"""Peering and EC recovery state machine.

When the monitor marks OSDs *out*, every placement group whose acting set
intersects them goes through the Ceph-like cycle this module models:

1. **Queueing** — the PG is queued, missing shards are computed from the
   old acting set ("collecting missing OSDs, queueing recovery").
2. **Reservation + peering** — the PG takes a backfill reservation on its
   primary and on each replacement OSD (``osd_max_backfills`` throttle),
   then scans its object census ("check recovery resource").
3. **Recovery I/O** — per object: the primary pulls the repair plan's
   reads from the surviving shards (disk + NIC), decodes (CPU), and
   pushes rebuilt chunks to the replacement OSDs (NIC + disk), throttled
   by ``osd_recovery_max_active`` per primary.

All repair I/O amounts come from the erasure code's own
:meth:`~repro.ec.base.ErasureCode.repair_plan`, so RS-vs-Clay differences
in Figures 2c/2d are produced by the codes, not by per-code constants.

Recovery ops are *gray-fault tolerant*: pulls and pushes that hit a
dropped transfer, a partitioned host, or a flapped-down helper are
retried with seeded backoff and a fresh repair plan (surviving helpers
re-enumerated per attempt), up to ``recovery_retry_max`` times.  An op
that exhausts its budget is abandoned — the PG stays degraded on its old
acting set rather than wedging the whole recovery cycle, and partial
pushes are rolled back so byte conservation stays exact.  Abandoned PGs
are remembered and *requeued* the next time a helper OSD rejoins the
map, so a healed cluster converges instead of staying wedged.

**Delta recovery** (the transient half of the failure-mode axis): when
an OSD comes back *up* before ``mon_osd_down_out_interval`` — the
monitor fires ``on_up`` instead of ``on_out`` — the PG's write log
(:mod:`repro.cluster.pglog`) already knows exactly which objects each
stale shard missed.  Peering diffs shard versions against the log and
repairs only those objects, in place, with no backfill reservation
storm; a shard whose divergence outlived the log's hard cap falls back
to a full per-shard sweep (Ceph's "log too short, backfilling").  Delta
bytes are accounted separately and bounded by an accrued budget so the
chaos harness can assert log-bounded repair as a step invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Set

from ..ec.base import ErasureCode
from ..sim import Environment, Event
from ..sim.rng import SeedSequence
from .crush import PlacementError
from .devices import DiskFailedError
from .logs import NodeLog
from .network import TransferDroppedError
from .osd import CephConfig, OsdDaemon
from .pool import PlacementGroup, Pool, StoredObject
from .retry import retry_backoff
from .topology import ClusterTopology

__all__ = [
    "RecoveryStats",
    "RecoveryManager",
    "AdmissionRecord",
    "DELTA_STAT_KEYS",
    "GEO_STAT_KEYS",
    "CASCADE_STAT_KEYS",
]


@dataclass
class RecoveryStats:
    """Aggregate counters for one recovery cycle."""

    pgs_queued: int = 0
    pgs_recovered: int = 0
    pgs_unplaceable: int = 0
    objects_recovered: int = 0
    chunks_rebuilt: int = 0
    chunks_toofull: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Object-op retries forced by gray faults (drops, flapped helpers).
    op_retries: int = 0
    #: Object ops abandoned after exhausting the retry budget.
    ops_abandoned: int = 0
    #: PGs left degraded because at least one op was abandoned.
    pgs_abandoned: int = 0
    #: Abandoned-degraded PGs requeued after a helper OSD rejoined.
    pgs_requeued: int = 0
    #: pg_log delta-recovery counters (transient down->up restarts).
    pgs_delta_recovered: int = 0
    objects_delta_recovered: int = 0
    delta_bytes_read: int = 0
    delta_bytes_written: int = 0
    #: Shard sweeps forced because the log trimmed past divergence.
    delta_fallback_backfills: int = 0
    #: Accrued delta allowance: the planned pull+push bytes of every
    #: delta attempt, credited *before* the I/O runs.  The log-bounded
    #: repair invariant asserts delta bytes spent never exceed it.
    delta_budget_bytes: int = 0
    #: Stretch-cluster counters: repair payload bytes that crossed a
    #: region boundary (counted only after the WAN delivered them, so
    #: they mirror the WanFabric's own delivered-byte accounting).
    cross_region_bytes_read: int = 0
    cross_region_bytes_written: int = 0
    cross_region_pulls: int = 0
    cross_region_pushes: int = 0
    #: Cascade-resilience counters.  ``time_at_min_redundancy`` is
    #: aggregate PG-seconds spent at redundancy margin <= 0 (one more
    #: loss is data loss), measured between osdmap/recovery events and
    #: only when ``osd_track_risk_exposure`` is on;
    #: ``pgs_at_min_redundancy`` counts entries into that state.
    #: ``pgs_toofull_requeued`` counts PGs whose toofull-abandoned
    #: backfill was requeued after capacity freed up.
    time_at_min_redundancy: float = 0.0
    pgs_at_min_redundancy: int = 0
    pgs_toofull_requeued: int = 0
    started_at: Optional[float] = None
    io_started_at: Optional[float] = None
    finished_at: Optional[float] = None


#: RecoveryStats fields added with the write path — pruned from digests
#: when zero so read-only runs hash identically to the prior model.
DELTA_STAT_KEYS = (
    "pgs_requeued",
    "pgs_delta_recovered",
    "objects_delta_recovered",
    "delta_bytes_read",
    "delta_bytes_written",
    "delta_fallback_backfills",
    "delta_budget_bytes",
)

#: RecoveryStats fields added with the geo axis — pruned from digests
#: when zero so single-region runs hash identically to the prior model.
GEO_STAT_KEYS = (
    "cross_region_bytes_read",
    "cross_region_bytes_written",
    "cross_region_pulls",
    "cross_region_pushes",
)

#: RecoveryStats fields added with the cascade axis — pruned from
#: digests when zero so pre-cascade runs hash identically.
CASCADE_STAT_KEYS = (
    "time_at_min_redundancy",
    "pgs_at_min_redundancy",
    "pgs_toofull_requeued",
)


@dataclass(frozen=True)
class AdmissionRecord:
    """One risk-mode recovery admission, for the priority-soundness oracle.

    ``pending_margins`` snapshots the redundancy margins of the PGs
    still waiting behind this one at the admission instant; the
    invariant asserts none of them was strictly more at risk than the
    PG admitted.  Only risk-priority runs record admissions — FIFO runs
    keep an empty log (the invariant is vacuous there by design).
    """

    at: float
    pg_id: int
    margin: int
    pending_margins: tuple


class RecoveryManager:
    """Drives all PG recoveries triggered by an osdmap change."""

    def __init__(
        self,
        env: Environment,
        topology: ClusterTopology,
        osds: Dict[int, OsdDaemon],
        pool: Pool,
        config: CephConfig,
        host_logs: Dict[int, NodeLog],
        mgr_log: NodeLog,
        ledger=None,
    ):
        self.env = env
        self.topology = topology
        self.osds = osds
        self.pool = pool
        self.config = config
        self.host_logs = host_logs
        self.mgr_log = mgr_log
        #: Optional WaLedger credited as rebuilt chunks are stored, so the
        #: cluster-wide byte-conservation invariant stays exact.
        self.ledger = ledger
        #: Duck-typed ByzantineState reference, planted by
        #: ``ensure_byzantine``; None unless a Byzantine fault landed.
        self.byzantine = None
        self.stats = RecoveryStats()
        # Consumed only when a gray fault actually forces a retry, so
        # healthy recovery cycles never draw from it.
        self._retry_rng = SeedSequence(0).stream("recovery-retry")
        self.out_osds: Set[int] = set()
        self._active_pgs = 0
        self._all_done: Optional[Event] = None
        #: PGs whose recovery was abandoned (or unplaceable): candidates
        #: for requeueing the next time an OSD rejoins the map.
        self._abandoned_pgs: Set[int] = set()
        #: PGs with a delta-recovery process in flight (dedupe guard).
        self._delta_busy: Set[int] = set()
        #: Deterministic round-robin offset for helper load-balancing on
        #: stretch clusters (D3 spirit): advanced once per localized
        #: plan, so successive objects spread their pulls across
        #: surviving hosts instead of hammering the same straw2 prefix.
        #: Never advanced on single-region topologies.
        self._helper_rr = 0
        #: Risk-mode admission trail (see :class:`AdmissionRecord`);
        #: stays empty under FIFO priority.
        self.admission_log: List[AdmissionRecord] = []
        #: pg_id -> sim time it entered redundancy margin <= 0; clocks
        #: close into ``stats.time_at_min_redundancy`` when margin
        #: recovers.  Only maintained under ``osd_track_risk_exposure``.
        self._at_min_since: Dict[int, float] = {}
        #: PGs that hit a toofull push during recovery, mapped to a
        #: per-up-OSD used-bytes snapshot at abandon time: a later drop
        #: below the snapshot (or a fresh OSD joining) requeues them.
        self._toofull_pgs: Dict[int, Dict[int, int]] = {}
        #: Toofull hits observed mid-recovery, consumed by
        #: ``_recover_pg`` to turn a silently-incomplete backfill into
        #: an explicit abandon-and-requeue.
        self._toofull_hit: Set[int] = set()
        #: pg_id -> earliest time its recovery was abandoned while a
        #: healthy placement with spare capacity demonstrably existed —
        #: the audit trail behind the no-avoidable-loss invariant.
        #: Entries clear when the PG later recovers.
        self._abandoned_with_alternative: Dict[int, float] = {}

    @property
    def idle(self) -> bool:
        """No PG recovery in flight (an invariant-probe for the chaos harness)."""
        return self._active_pgs == 0

    def _log_for(self, osd_id: int) -> NodeLog:
        return self.host_logs[self.osds[osd_id].device.host_id]

    # -- entry point (wired to Monitor.on_out) -------------------------------------

    def on_osds_out(self, newly_out: Set[int]) -> None:
        """React to an osdmap change: queue recovery for affected PGs."""
        self.out_osds |= set(newly_out)
        self._update_risk_clocks()
        if self.stats.started_at is None:
            self.stats.started_at = self.env.now
        affected = self.pool.pgs_using_osd(newly_out)
        batch = []
        for pg in affected:
            lost_shards = pg.shards_on(self.out_osds)
            if not lost_shards:
                continue
            batch.append((pg, lost_shards))
        self._spawn_recoveries(batch)

    # -- risk-prioritized dispatch ---------------------------------------------------

    def pg_margin(self, pg: PlacementGroup) -> int:
        """Redundancy margin: up acting shards minus k.

        0 means one more loss is data loss (min redundancy); negative
        means the PG cannot currently serve reads from live shards.
        """
        alive = sum(
            1 for osd_id in pg.acting if self.osds[osd_id].is_up()
        )
        return alive - self.pool.code.k

    def _risk_key(self, pg: PlacementGroup, lost_shards: List[int]):
        """Priority-queue order: margin asc, bytes-at-risk desc,
        degraded-object count desc, pg id (deterministic tie-break)."""
        bytes_at_risk = pg.stored_bytes() * len(lost_shards)
        return (
            self.pg_margin(pg),
            -bytes_at_risk,
            -len(pg.objects),
            pg.pg_id,
        )

    def _spawn_recoveries(self, batch, requeued: bool = False) -> None:
        """Dispatch a same-instant batch of PG recoveries.

        FIFO mode spawns in the caller's (pool-iteration) order — byte
        identical to the historical model.  Risk mode re-scores every
        queued PG against the *current* map (margins reflect any OSD
        that is already down again), sorts by risk, and spawns in that
        order; because all processes start at the same instant, the
        backfill Resource queues then grant reservations in priority
        order.  Each admission is recorded for the priority-soundness
        invariant.
        """
        if self.config.osd_recovery_priority == "risk":
            batch = sorted(
                batch, key=lambda item: self._risk_key(item[0], item[1])
            )
            margins = [self.pg_margin(pg) for pg, _ in batch]
            for index, (pg, _) in enumerate(batch):
                self.admission_log.append(
                    AdmissionRecord(
                        at=self.env.now,
                        pg_id=pg.pg_id,
                        margin=margins[index],
                        pending_margins=tuple(margins[index + 1:]),
                    )
                )
        for pg, lost_shards in batch:
            self._active_pgs += 1
            self.stats.pgs_queued += 1
            if requeued:
                self.stats.pgs_requeued += 1
                self.mgr_log.emit(
                    self.env.now, "mgr",
                    "helper rejoined, requeueing degraded pg", pg=pg.pgid,
                )
            self.env.process(self._recover_pg(pg, lost_shards))

    def _update_risk_clocks(self) -> None:
        """Advance the per-PG time-at-min-redundancy accounting.

        Called on every osdmap/up event and on each PG recovery
        completion; a no-op unless ``osd_track_risk_exposure`` is set,
        so pre-cascade runs never touch the new stats fields.
        """
        if not self.config.osd_track_risk_exposure:
            return
        now = self.env.now
        for pg_id in sorted(self.pool.pgs):
            pg = self.pool.pgs[pg_id]
            at_min = self.pg_margin(pg) <= 0
            since = self._at_min_since.get(pg_id)
            if at_min and since is None:
                self._at_min_since[pg_id] = now
                self.stats.pgs_at_min_redundancy += 1
            elif not at_min and since is not None:
                self.stats.time_at_min_redundancy += now - since
                del self._at_min_since[pg_id]

    def pgs_at_tolerance(self) -> int:
        """PGs currently at margin <= 0 (the benchmark's exposure probe)."""
        return sum(
            1
            for pg_id in sorted(self.pool.pgs)
            if self.pg_margin(self.pool.pgs[pg_id]) <= 0
        )

    def on_osds_in(self, newly_in: Set[int]) -> None:
        """React to restored OSDs rejoining the map.

        Dropping them from the exclusion set lets later placement and
        fault rounds reuse them — without this, a restore leaves the set
        permanently poisoned and repeated fault/restore campaigns starve.

        PGs whose recovery was abandoned (gray faults exhausted the
        retry budget) or unplaceable are requeued here: a rejoining
        helper is exactly the event that can make them recoverable, and
        without the requeue a healed cluster stays wedged degraded.
        """
        self.out_osds -= set(newly_in)
        self._update_risk_clocks()
        if self._abandoned_pgs:
            requeue = sorted(self._abandoned_pgs)
            self._abandoned_pgs.clear()
            batch = []
            for pg_id in requeue:
                pg = self.pool.pgs[pg_id]
                # A rejoining OSD supersedes the capacity watch: the
                # requeue here already retries the backfill.
                self._toofull_pgs.pop(pg_id, None)
                lost_shards = pg.shards_on(self.out_osds)
                if not lost_shards:
                    # Every OSD this PG was missing is back in the map:
                    # nothing to rebuild (any staleness is delta's job).
                    continue
                batch.append((pg, lost_shards))
            self._spawn_recoveries(batch, requeued=True)
        self._queue_delta(set(newly_in))

    # -- entry point (wired to Monitor.on_up): pg_log delta recovery ----------------

    def on_osds_up(self, newly_up: Set[int]) -> None:
        """A transient restart: down->up *before* the down-out interval.

        No osdmap placement changed, so there is nothing to backfill —
        but the rejoining OSD missed every write committed while it was
        away.  The PG logs know exactly which objects those were; queue
        delta recovery for the affected PGs.
        """
        self._update_risk_clocks()
        self._queue_delta(set(newly_up))

    def _queue_delta(self, osd_ids: Set[int]) -> None:
        for pg in self.pool.pgs_using_osd(osd_ids):
            self._maybe_queue_delta_pg(pg)

    def _maybe_queue_delta_pg(self, pg: PlacementGroup) -> bool:
        """Queue delta recovery if the PG has dirty shards on live OSDs."""
        if pg.log is None or pg.pg_id in self._delta_busy:
            return False
        dirty = [
            shard
            for shard in sorted(pg.log.dirty_shards())
            if pg.acting[shard] not in self.out_osds
            and self.osds[pg.acting[shard]].is_up()
        ]
        if not dirty:
            return False
        self._delta_busy.add(pg.pg_id)
        self._active_pgs += 1
        self.stats.pgs_queued += 1
        if self.stats.started_at is None:
            self.stats.started_at = self.env.now
        self.env.process(self._delta_recover_pg(pg))
        return True

    def kick_stale(self) -> bool:
        """Queue delta recovery for every PG with live dirty shards.

        Convergence predicates (gray driver, chaos settle loop) call
        this to catch staleness with no down->up trigger: an OSD whose
        fault was restored within the heartbeat grace was never marked
        down, so no monitor event fires, yet its shards may have missed
        writes.  Returns True if anything was queued (=> not converged).
        No-op on read-only runs — nothing is ever dirty.
        """
        queued = False
        for pg_id in sorted(self.pool.pgs):
            if self._maybe_queue_delta_pg(self.pool.pgs[pg_id]):
                queued = True
        if self._kick_toofull():
            queued = True
        return queued

    # -- toofull requeue (capacity backpressure) --------------------------------------

    def _capacity_snapshot(self) -> Dict[int, int]:
        """Per-up-OSD allocated bytes, the toofull-retry trigger state."""
        return {
            osd_id: self.osds[osd_id].disk.used_bytes
            for osd_id in sorted(self.osds)
            if self.osds[osd_id].is_up()
        }

    def _note_toofull(self, pg: PlacementGroup) -> None:
        """Watch a toofull-abandoned PG for freed capacity.

        The snapshot comparison in :meth:`_kick_toofull` only requeues
        when some up OSD's usage *dropped* below what it was at abandon
        time (or a fresh OSD joined) — never on mere growth — so the
        settle loop cannot livelock on a permanently-full cluster.
        """
        self._toofull_pgs[pg.pg_id] = self._capacity_snapshot()

    def _kick_toofull(self) -> bool:
        """Requeue toofull-abandoned PGs once capacity has freed.

        Called from :meth:`kick_stale` (the chaos/gray convergence
        kick): a transient toofull — an OSD that filled during the
        cascade and later freed space, or a new target joining — no
        longer leaves a permanently degraded shard.
        """
        queued = False
        batch = []
        current = self._capacity_snapshot() if self._toofull_pgs else {}
        for pg_id in sorted(self._toofull_pgs):
            snapshot = self._toofull_pgs[pg_id]
            freed = any(
                used < snapshot.get(osd_id, float("inf"))
                for osd_id, used in current.items()
            )
            if not freed:
                continue
            del self._toofull_pgs[pg_id]
            pg = self.pool.pgs[pg_id]
            self._abandoned_pgs.discard(pg_id)
            lost_shards = pg.shards_on(self.out_osds)
            if not lost_shards:
                continue
            self.stats.pgs_toofull_requeued += 1
            self.mgr_log.emit(
                self.env.now, "mgr",
                "capacity freed, requeueing toofull pg", pg=pg.pgid,
            )
            batch.append((pg, lost_shards))
            queued = True
        if batch:
            self._spawn_recoveries(batch)
        return queued

    def wait_all_recovered(self) -> Event:
        """Event firing when every queued PG finished recovery."""
        if self._all_done is None:
            self._all_done = self.env.event()
            if self._active_pgs == 0:
                self._all_done.succeed()
        return self._all_done

    def _pg_finished(self) -> None:
        self._active_pgs -= 1
        self.stats.finished_at = self.env.now
        if self._active_pgs == 0 and self._all_done is not None:
            if not self._all_done.triggered:
                self._all_done.succeed()

    # -- per-PG state machine --------------------------------------------------------

    def _backfillfull_osds(self) -> Set[int]:
        """OSDs past the backfillfull ratio: not valid backfill targets."""
        ratio = self.config.mon_osd_backfillfull_ratio
        return {
            osd_id
            for osd_id, osd in self.osds.items()
            if osd.disk.usage_ratio >= ratio
        }

    def _audit_abandon(self, pg: PlacementGroup) -> None:
        """Record an abandon while a viable alternative placement existed.

        The no-avoidable-loss invariant's evidence trail: if at abandon
        time a placement avoiding the out set existed whose every OSD
        still had headroom for this PG's shard, remember the instant.
        The entry clears if the PG later recovers; one surviving an
        actual data loss convicts the recovery policy of avoidable loss.
        """
        if pg.pg_id in self._abandoned_with_alternative:
            return
        shard_bytes = pg.stored_bytes()
        full = {
            osd_id
            for osd_id, osd in self.osds.items()
            if osd.disk.headroom_bytes() < shard_bytes
        }
        try:
            self.pool.crush.place_pg(
                pg.pool_id,
                pg.pg_id,
                self.pool.code.n,
                self.pool.failure_domain,
                excluded_osds=self.out_osds | full,
                region_rule=self.pool.region_rule,
            )
        except PlacementError:
            return
        self._abandoned_with_alternative[pg.pg_id] = self.env.now

    def _recover_pg(self, pg: PlacementGroup, lost_shards: List[int]) -> Generator:
        old_acting = list(pg.acting)
        self._toofull_hit.discard(pg.pg_id)
        # Capacity-aware target selection: OSDs past the backfillfull
        # ratio are excluded up front (Ceph's backfillfull reservation
        # rejection).  If that leaves too few buckets, fall back to
        # capacity-blind placement — the per-push headroom check is
        # still the last line of defense.
        excluded = set(self.out_osds) | self._backfillfull_osds()
        try:
            try:
                new_acting = self.pool.crush.place_pg(
                    pg.pool_id,
                    pg.pg_id,
                    self.pool.code.n,
                    self.pool.failure_domain,
                    excluded_osds=excluded,
                    region_rule=self.pool.region_rule,
                )
            except PlacementError:
                if excluded == self.out_osds:
                    raise
                new_acting = self.pool.crush.place_pg(
                    pg.pool_id,
                    pg.pg_id,
                    self.pool.code.n,
                    self.pool.failure_domain,
                    excluded_osds=self.out_osds,
                    region_rule=self.pool.region_rule,
                )
        except PlacementError:
            self.stats.pgs_unplaceable += 1
            self._abandoned_pgs.add(pg.pg_id)
            self._audit_abandon(pg)
            self.mgr_log.emit(
                self.env.now, "mgr", "pg remains degraded, no placement",
                pg=pg.pgid,
            )
            self._pg_finished()
            return

        primary = new_acting[0]
        if (
            self.topology.wan is not None
            and self.config.recovery_locality_aware
        ):
            primary = self._geo_primary(old_acting, new_acting, lost_shards)
        targets = sorted({new_acting[shard] for shard in lost_shards})
        self._log_for(primary).emit(
            self.env.now,
            "osd",
            "collecting missing OSDs, queueing recovery",
            pg=pg.pgid,
            missing=len(lost_shards),
        )

        # Backfill reservations, taken in OSD-id order to avoid deadlock.
        reservation_osds = sorted({primary, *targets})
        for osd_id in reservation_osds:
            yield self.osds[osd_id].backfill_slots.acquire()
        try:
            self._log_for(primary).emit(
                self.env.now, "osd", "check recovery resource", pg=pg.pgid
            )
            peering = (
                self.config.peering_base
                + self.config.peering_per_object * len(pg.objects)
            )
            yield self.env.timeout(peering)
            # Peering compares per-shard version claims, so any false
            # ack on this PG surfaces here as pg_log divergence.
            if self.byzantine is not None:
                revealed = self.byzantine.reveal_false_acks(
                    pg, self.env.now, "peering"
                )
                if revealed:
                    self._log_for(primary).emit(
                        self.env.now, "osd",
                        "peering version check: acked writes never applied",
                        pg=pg.pgid, shards=revealed,
                    )
            if self.stats.io_started_at is None:
                self.stats.io_started_at = self.env.now
                self.mgr_log.emit(
                    self.env.now, "mgr", "report recovery I/O", phase="start"
                )
            self._log_for(primary).emit(
                self.env.now, "osd", "start recovery I/O",
                pg=pg.pgid, objects=len(pg.objects),
            )
            ops = [
                self.env.process(
                    self._recover_object(
                        pg, obj, lost_shards, old_acting, new_acting,
                        primary_id=primary,
                    )
                )
                for obj in pg.objects
            ]
            results = (yield self.env.all_of(ops)) if ops else []
        finally:
            for osd_id in reversed(reservation_osds):
                self.osds[osd_id].backfill_slots.release()

        toofull = pg.pg_id in self._toofull_hit
        self._toofull_hit.discard(pg.pg_id)
        if not all(results) or toofull:
            # At least one object op was abandoned (or a push found its
            # target toofull): the rebuilt state is incomplete, so the
            # PG keeps its old acting set and stays degraded instead of
            # claiming a clean map it cannot serve.
            self.stats.pgs_abandoned += 1
            self._abandoned_pgs.add(pg.pg_id)
            self._audit_abandon(pg)
            if toofull:
                # Watch for freed capacity: kick_stale requeues this PG
                # instead of leaving the shard permanently degraded.
                self._note_toofull(pg)
                self._log_for(primary).emit(
                    self.env.now, "osd",
                    "backfill toofull, pg remains degraded",
                    pg=pg.pgid,
                )
            else:
                self._log_for(primary).emit(
                    self.env.now, "osd",
                    "recovery abandoned, pg remains degraded",
                    pg=pg.pgid, failed=sum(1 for ok in results if not ok),
                )
            self._pg_finished()
            return

        pg.acting = new_acting
        self._abandoned_with_alternative.pop(pg.pg_id, None)
        self._toofull_pgs.pop(pg.pg_id, None)
        self._update_risk_clocks()
        self.stats.pgs_recovered += 1
        self._log_for(primary).emit(
            self.env.now, "osd", "recovery completed", pg=pg.pgid
        )
        self.mgr_log.emit(
            self.env.now, "mgr", "report recovery I/O",
            pg=pg.pgid, phase="pg-done",
        )
        # Backfill rebuilt the lost shards current, but staleness on
        # *other* positions (writes that raced the rebuild, shards that
        # missed writes without ever failing) is delta's job.
        if pg.log is not None and pg.log.dirty_shards():
            self._maybe_queue_delta_pg(pg)
        self._pg_finished()

    def _geo_primary(
        self,
        old_acting: List[int],
        new_acting: List[int],
        lost_shards: List[int],
    ) -> int:
        """Pick the decoding primary in the cheapest region for the WAN.

        On a stretch cluster the primary is where helper pulls converge
        and pushes originate, so its region decides which legs cross the
        WAN.  The cheapest region minimises the repair plan's cross
        bytes: each helper read costs its plan fraction when pulled from
        another region, each rebuilt shard a full push when its target
        lives elsewhere.  The split matters — for a single loss the
        target's region wins (LRC pulls its whole local group in-region,
        Clay's fractional pulls are cheaper than a full cross push), but
        for a region-wide rebuild every helper lives elsewhere and
        decoding next to the helpers beats shipping their full reads
        into the recovering region, retries included.  Ties prefer the
        helper-richest region (retried pulls stay local), then the
        lowest region id — fully deterministic, no RNG draw.
        """
        region_of = self.topology.region_of
        code = self.pool.code
        alive = [
            shard
            for shard, osd_id in enumerate(old_acting)
            if shard not in lost_shards and self.osds[osd_id].is_up()
        ]
        try:
            plan = code.repair_plan(list(lost_shards), alive)
            reads = [
                (region_of(old_acting[read.chunk_index]), read.fraction)
                for read in plan.reads
            ]
        except ValueError:
            # Not repairable right now (flap window) — approximate with
            # the conventional any-k read set.
            reads = [(region_of(old_acting[s]), 1.0) for s in alive[: code.k]]
        targets = [region_of(new_acting[s]) for s in lost_shards]
        candidates = sorted({region for region, _ in reads} | set(targets))
        if not candidates:
            return new_acting[0]

        def wan_cost(region: int):
            pulls = sum(f for r, f in reads if r != region)
            pushes = sum(1.0 for r in targets if r != region)
            helpers = sum(1 for r, _ in reads if r == region)
            return (pulls + pushes, -helpers, region)

        home = min(candidates, key=wan_cost)
        for shard in lost_shards:
            if region_of(new_acting[shard]) == home:
                return new_acting[shard]
        for shard, osd_id in enumerate(new_acting):
            if shard not in lost_shards and region_of(osd_id) == home:
                return osd_id
        return new_acting[0]

    # -- pg_log delta recovery (transient down->up restarts) --------------------------

    def _delta_recover_pg(self, pg: PlacementGroup) -> Generator:
        """Repair a PG's stale shards in place, guided by its pg_log.

        Loops until the log shows no live dirty shard: writes racing a
        round (``record_repair`` refuses a stale version) or landing
        mid-round simply dirty the log again and are picked up by the
        next round.  Pure delta rounds take *no* backfill reservations —
        that absence is the reservation-storm half of the transient-vs-
        permanent cost gap; only the trimmed-log fallback sweeps reserve.
        """
        log = pg.log
        assert log is not None
        primary_id = pg.acting[0]
        announced = False
        try:
            while True:
                acting = list(pg.acting)
                live_dirty = [
                    shard
                    for shard in sorted(log.dirty_shards())
                    if acting[shard] not in self.out_osds
                    and self.osds[acting[shard]].is_up()
                ]
                if not live_dirty:
                    break
                primary_id = next(
                    (osd_id for osd_id in acting if self.osds[osd_id].is_up()),
                    acting[0],
                )
                fallback = [
                    shard for shard in live_dirty
                    if log.delta_objects(shard) is None
                ]
                delta_shards = [s for s in live_dirty if s not in fallback]
                by_name = {obj.name: obj for obj in pg.objects}
                dirty_objs: Dict[str, Set[int]] = {}
                first_miss: Dict[str, int] = {}
                for shard in delta_shards:
                    for name in log.delta_objects(shard):
                        dirty_objs.setdefault(name, set()).add(shard)
                        since = log.stale_since(name, shard)
                        if name not in first_miss or since < first_miss[name]:
                            first_miss[name] = since
                if not announced:
                    announced = True
                    self._log_for(primary_id).emit(
                        self.env.now, "osd", "pg_log peering: delta recovery",
                        pg=pg.pgid, dirty=len(live_dirty),
                        objects=len(dirty_objs),
                    )
                # Peering cost scales with the log diff, not the census.
                yield self.env.timeout(
                    self.config.peering_base
                    + self.config.peering_per_object * len(dirty_objs)
                )
                # Delta peering runs the same version cross-check as a
                # full peer: false acks on this PG surface here too.
                if self.byzantine is not None:
                    revealed = self.byzantine.reveal_false_acks(
                        pg, self.env.now, "peering"
                    )
                    if revealed:
                        self._log_for(primary_id).emit(
                            self.env.now, "osd",
                            "peering version check: acked writes "
                            "never applied",
                            pg=pg.pgid, shards=revealed,
                        )
                if self.stats.io_started_at is None:
                    self.stats.io_started_at = self.env.now
                    self.mgr_log.emit(
                        self.env.now, "mgr", "report recovery I/O",
                        phase="start",
                    )
                before = log.dirty_state()
                ok = True
                if dirty_objs:
                    order = sorted(
                        dirty_objs, key=lambda name: (first_miss[name], name)
                    )
                    ops = [
                        self.env.process(
                            self._recover_object(
                                pg, by_name[name], sorted(dirty_objs[name]),
                                acting, acting,
                                in_place=True, delta=True,
                                primary_id=primary_id,
                            )
                        )
                        for name in order
                    ]
                    results = yield self.env.all_of(ops)
                    ok = all(results)
                if fallback:
                    swept = yield from self._sweep_shards(
                        pg, acting, fallback, primary_id
                    )
                    ok = ok and swept
                if not ok:
                    # Retry budgets exhausted mid-gray-fault: leave the
                    # staleness recorded; the next monitor event or
                    # convergence kick requeues this PG.
                    self._log_for(primary_id).emit(
                        self.env.now, "osd",
                        "delta recovery abandoned, pg remains stale",
                        pg=pg.pgid,
                    )
                    return
                if log.dirty_state() == before:
                    # No repair landed and no write raced (head is
                    # unchanged): another round would do exactly the
                    # same work (e.g. toofull targets).  Bail rather
                    # than loop; the next osdmap event retries.
                    self._log_for(primary_id).emit(
                        self.env.now, "osd",
                        "delta recovery stalled, pg remains stale",
                        pg=pg.pgid,
                    )
                    return
            if announced:
                self.stats.pgs_delta_recovered += 1
                self._log_for(primary_id).emit(
                    self.env.now, "osd", "delta recovery completed",
                    pg=pg.pgid,
                )
                self.mgr_log.emit(
                    self.env.now, "mgr", "report recovery I/O",
                    pg=pg.pgid, phase="delta-done",
                )
        finally:
            self._delta_busy.discard(pg.pg_id)
            self._pg_finished()

    def _sweep_shards(
        self,
        pg: PlacementGroup,
        acting: List[int],
        shards: List[int],
        primary_id: int,
    ) -> Generator:
        """Full in-place sweep of shards whose log window was trimmed.

        Ceph's "log too short, backfilling" arc: the log can no longer
        enumerate what these shards missed, so every object is rebuilt
        in place, under backfill reservations, with the bytes counted as
        ordinary recovery traffic — this *is* a backfill, merely one
        that keeps the acting set.
        """
        log = pg.log
        for shard in shards:
            self.stats.delta_fallback_backfills += 1
            self._log_for(primary_id).emit(
                self.env.now, "osd",
                "pg_log trimmed past divergence, falling back to backfill",
                pg=pg.pgid, shard=shard,
            )
        reservation_osds = sorted({primary_id, *(acting[s] for s in shards)})
        for osd_id in reservation_osds:
            yield self.osds[osd_id].backfill_slots.acquire()
        try:
            ops = [
                self.env.process(
                    self._recover_object(
                        pg, obj, list(shards), acting, acting,
                        in_place=True, delta=False, primary_id=primary_id,
                    )
                )
                for obj in pg.objects
            ]
            results = (yield self.env.all_of(ops)) if ops else []
        finally:
            for osd_id in reversed(reservation_osds):
                self.osds[osd_id].backfill_slots.release()
        if all(results):
            for shard in shards:
                log.clear_backfill(shard)
            return True
        return False

    # -- per-object recovery op ---------------------------------------------------------

    def _recover_object(
        self,
        pg: PlacementGroup,
        obj: StoredObject,
        lost_shards: List[int],
        old_acting: List[int],
        new_acting: List[int],
        in_place: bool = False,
        delta: bool = False,
        primary_id: Optional[int] = None,
    ) -> Generator:
        code = self.pool.code
        primary = self.osds[
            primary_id if primary_id is not None else new_acting[0]
        ]
        layout = obj.layout
        yield primary.recovery_ops.acquire()
        try:
            # Messaging/commit round trips of the pull+push op pair.
            yield self.env.timeout(self.config.recovery_op_overhead)
            attempt = 0
            #: Shards already persisted on their targets — never
            #: re-pushed across retries (no double-stored bytes).
            pushed: Set[int] = set()
            while True:
                ok = yield from self._attempt_object(
                    code, pg, obj, lost_shards, old_acting, new_acting,
                    primary, layout, pushed, in_place=in_place, delta=delta,
                )
                if ok:
                    if delta:
                        self.stats.objects_delta_recovered += 1
                    else:
                        self.stats.objects_recovered += 1
                    self.stats.chunks_rebuilt += len(lost_shards)
                    if self.config.osd_recovery_sleep:
                        yield self.env.timeout(self.config.osd_recovery_sleep)
                    return True
                attempt += 1
                if attempt > self.config.recovery_retry_max:
                    self.stats.ops_abandoned += 1
                    self._log_for(primary.osd_id).emit(
                        self.env.now, "osd",
                        "recovery op abandoned after retries",
                        pg=pg.pgid, object=obj.name, attempts=attempt,
                    )
                    return False
                self.stats.op_retries += 1
                yield self.env.timeout(
                    retry_backoff(
                        attempt, self.config.recovery_retry_base, self._retry_rng
                    )
                )
        finally:
            primary.recovery_ops.release()

    def _attempt_object(
        self,
        code: ErasureCode,
        pg: PlacementGroup,
        obj: StoredObject,
        lost_shards: List[int],
        old_acting: List[int],
        new_acting: List[int],
        primary: OsdDaemon,
        layout,
        pushed: Set[int],
        in_place: bool = False,
        delta: bool = False,
    ) -> Generator:
        """One pull+decode+push attempt; False on any gray-fault loss.

        Survivors are re-enumerated on every attempt, so a helper that
        flapped down (or a host whose network was restored) changes the
        repair plan between attempts rather than failing the op outright.
        Shards the pg_log knows to be stale never serve as sources, and
        the object version captured *before* the pulls is what
        ``record_repair`` asserts against — a write racing the repair
        leaves the shard stale and a later round redoes it.
        """
        log = pg.log
        stale = log.stale_shards(obj.name) if log is not None else set()
        captured_version = (
            log.object_version.get(obj.name) if log is not None else None
        )
        alive_shards = [
            shard
            for shard, osd_id in enumerate(old_acting)
            if shard not in lost_shards
            and shard not in stale
            and self.osds[osd_id].is_up()
        ]
        try:
            plan = code.repair_plan(lost_shards, alive_shards)
        except ValueError:
            # Too few helpers up right now (flap window) — retryable.
            return False
        if (
            self.topology.wan is not None
            and self.config.recovery_locality_aware
            and len(alive_shards) > len(plan.reads)
        ):
            plan = self._localize_plan(
                code, lost_shards, alive_shards, plan, old_acting, primary
            )
        to_push = [shard for shard in lost_shards if shard not in pushed]
        if delta:
            # Accrue the attempt's allowance before any I/O runs, so the
            # log-bounded-repair invariant is monotone-safe: bytes spent
            # can never overtake budget at any observation instant.
            planned_reads = sum(
                layout.chunk_stored_bytes
                if read.fraction >= 1.0
                else int(layout.chunk_stored_bytes * read.fraction)
                for read in plan.reads
            )
            self.stats.delta_budget_bytes += (
                planned_reads + layout.chunk_stored_bytes * len(to_push)
            )
        pulls = [
            self.env.process(
                self._pull_shard(read, old_acting, primary, layout, delta=delta)
            )
            for read in plan.reads
        ]
        pull_results = yield self.env.all_of(pulls)
        if not all(pull_results):
            return False
        fragments = layout.units * code.sub_chunk_count * len(lost_shards)
        decode = primary.decode_time(
            output_bytes=layout.chunk_stored_bytes * len(lost_shards),
            decode_work=plan.decode_work,
            fragments=fragments,
            cpu_cost_factor=getattr(code, "cpu_cost_factor", 1.0),
        )
        yield primary.cpu.request(decode)
        pushes = {
            shard: self.env.process(
                self._push_shard(
                    shard, new_acting, primary, layout,
                    delta=delta,
                    # In-place repair overwrites the existing extents;
                    # allocation happens only for chunks a degraded
                    # create never physically stored.
                    allocate=(not in_place)
                    or (log is not None and log.is_unstored(obj.name, shard)),
                )
            )
            for shard in to_push
        }
        push_results = yield self.env.all_of(list(pushes.values()))
        for shard, result in zip(pushes, push_results):
            if result:
                pushed.add(shard)
                if result == "toofull":
                    # Surface the capacity miss to the PG state machine:
                    # _recover_pg abandons (and capacity-watches) the PG
                    # instead of claiming a clean map missing a chunk.
                    self._toofull_hit.add(pg.pg_id)
                if log is None:
                    continue
                if result == "stored":
                    # The chunk physically exists now, whatever version
                    # its content reflects — never allocate it again.
                    log.unstored.discard((obj.name, shard))
                if result != "toofull":
                    log.record_repair(obj.name, shard, captured_version)
        return all(push_results)

    def _localize_plan(
        self,
        code: ErasureCode,
        lost_shards: List[int],
        alive_shards: List[int],
        plan,
        old_acting: List[int],
        primary: OsdDaemon,
    ):
        """Steer the repair plan toward in-region helpers when it's free.

        Every plugin's ``repair_plan`` picks helpers from the *offered*
        alive set, so locality is injected by offering a subset: helpers
        in the primary's region first, ties broken by a deterministic
        round-robin over host ids (D3-style recovery load balancing),
        truncated to the read count the code already chose.  The
        candidate plan is accepted only if it is no worse on every cost
        axis — total read fraction, decode work, and cross-region reads
        — so codes whose repair sets are rigid (an LRC local group, a
        SHEC window) simply keep their original plan.  MDS codes accept
        any k helpers and Clay any d, which is where region-local
        reconstruction pays off.
        """
        home = self.topology.region_of(primary.osd_id)
        num_hosts = self.topology.num_hosts
        offset = self._helper_rr
        self._helper_rr += 1

        def rank(shard: int):
            osd_id = old_acting[shard]
            local = 0 if self.topology.region_of(osd_id) == home else 1
            host = self.osds[osd_id].device.host_id
            return (local, (host - offset) % num_hosts, shard)

        preferred = sorted(alive_shards, key=rank)[: len(plan.reads)]
        try:
            candidate = code.repair_plan(lost_shards, preferred)
        except ValueError:
            return plan

        def cross_fraction(p) -> float:
            return sum(
                read.fraction
                for read in p.reads
                if self.topology.region_of(old_acting[read.chunk_index])
                != home
            )

        eps = 1e-9
        total = sum(read.fraction for read in plan.reads)
        cand_total = sum(read.fraction for read in candidate.reads)
        if (
            cross_fraction(candidate) <= cross_fraction(plan) + eps
            and cand_total <= total + eps
            and candidate.decode_work <= plan.decode_work + eps
        ):
            return candidate
        return plan

    def _pull_shard(
        self, read, old_acting, primary: OsdDaemon, layout, delta: bool = False
    ) -> Generator:
        """Read one helper shard and ship it to the primary.

        The read first waits for the source's recovery-QoS grant (the
        scheduler share — usually the binding constraint), then performs
        the device I/O, then crosses the network.

        Never fails its process: a flapped-down source, failed disk, or
        dropped/partitioned transfer returns ``False`` so the object op
        can replan and retry.  Disk bytes already read when a transfer
        drops stay counted — that I/O really happened.
        """
        source = self.osds[old_acting[read.chunk_index]]
        try:
            if not source.is_up():
                return False
            if read.fraction >= 1.0:
                nbytes = layout.chunk_stored_bytes
                yield source.recovery_read_grant(nbytes)
                yield source.read_chunk(nbytes, layout.units)
            else:
                nbytes = int(layout.chunk_stored_bytes * read.fraction)
                profile = source.subchunk_profile(
                    layout.units, layout.stripe_unit, read.fraction, read.io_ops
                )
                # The grant covers what the device must move (full extents
                # when the read degenerated); only the wanted sub-chunks
                # cross the network.
                yield source.recovery_read_grant(
                    profile.disk_bytes, runs=profile.scatter_runs
                )
                yield source.read_subchunks(
                    layout.units, layout.stripe_unit, read.fraction, read.io_ops
                )
                # Software cost of extracting the sub-chunk ranges.
                ranges = layout.units * read.io_ops
                yield source.cpu.request(
                    ranges * self.config.subchunk_range_overhead
                )
            if delta:
                self.stats.delta_bytes_read += nbytes
            else:
                self.stats.bytes_read += nbytes
            yield self.topology.fabric.transfer(
                self.topology.nic_of(source.osd_id),
                self.topology.nic_of(primary.osd_id),
                nbytes,
            )
            # Counted only after delivery so the totals stay in lockstep
            # with the WanFabric's own delivered-byte ledger (the chaos
            # cross-region-byte invariant compares the two).
            if self.topology.wan is not None and self.topology.region_of(
                source.osd_id
            ) != self.topology.region_of(primary.osd_id):
                self.stats.cross_region_bytes_read += nbytes
                self.stats.cross_region_pulls += 1
        except (TransferDroppedError, DiskFailedError):
            return False
        return True

    def _push_shard(
        self,
        shard: int,
        new_acting,
        primary: OsdDaemon,
        layout,
        delta: bool = False,
        allocate: bool = True,
    ) -> Generator:
        """Ship one rebuilt shard from the primary and persist it.

        With ``allocate`` (backfill to a fresh target, or a chunk a
        degraded create never stored) the space is reserved up front; a
        target without capacity headroom behaves like Ceph's
        ``backfill_toofull``: the shard stays degraded rather than
        overfilling the device (returns ``"toofull"`` — truthy, not
        retryable, but the caller must not mark the shard repaired).
        Without it the push overwrites the chunk's existing extents in
        place (delta repair of stale-but-stored data).

        Never fails its process.  If the wire transfer or the device
        write is lost to a gray fault, the speculative space reservation
        is rolled back (chunk removed, ledger debited) and ``False`` is
        returned, so a retry re-pushes from a clean accounting state.
        """
        target = self.osds[new_acting[shard]]
        nbytes = layout.chunk_stored_bytes
        if not target.is_up():
            # Flapped-down target: retry once it oscillates back up.
            return False
        allocated = metadata = 0
        if allocate:
            allocated, metadata = target.backend.chunk_allocation(nbytes, layout.units)
            if target.disk.used_bytes + allocated + metadata > target.disk.spec.capacity_bytes:
                self.stats.chunks_toofull += 1
                self.mgr_log.emit(
                    self.env.now, "mgr", "backfill toofull, shard stays degraded",
                    osd=target.name,
                )
                return "toofull"
            # Reserve the space synchronously with the check (concurrent
            # pushes to one target must not race past the headroom test).
            target.store_chunk(nbytes, layout.units)
            if self.ledger is not None:
                self.ledger.credit_repair(allocated, metadata)
        try:
            yield self.topology.fabric.transfer(
                self.topology.nic_of(primary.osd_id),
                self.topology.nic_of(target.osd_id),
                nbytes,
            )
            # The WAN delivered these bytes even if the device write
            # below fails — count them here, not after the write, so the
            # cross-region invariant stays exact under gray faults.
            if self.topology.wan is not None and self.topology.region_of(
                primary.osd_id
            ) != self.topology.region_of(target.osd_id):
                self.stats.cross_region_bytes_written += nbytes
                self.stats.cross_region_pushes += 1
            yield target.recovery_write_grant(nbytes)
            yield target.write_chunk(nbytes, layout.units)
        except (TransferDroppedError, DiskFailedError):
            if allocate:
                target.remove_chunk(nbytes, layout.units)
                if self.ledger is not None:
                    self.ledger.debit_repair(allocated, metadata)
            return False
        if delta:
            self.stats.delta_bytes_written += nbytes
        else:
            self.stats.bytes_written += nbytes
        return "stored"
