"""Cluster health reporting (a ``ceph status``-style summary).

Derives a HEALTH_OK / HEALTH_WARN / HEALTH_ERR verdict from the live
cluster state: down/out OSDs, degraded and undersized PGs, near-full
devices.  The Coordinator does not depend on this — recovery completion
is tracked from logs, as in the paper — but operators (and the examples)
get the at-a-glance view a real cluster would print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .ceph import CephCluster
from .scrub import ScrubPhase

__all__ = ["HealthStatus", "HealthReport", "check_health"]


class HealthStatus:
    """The three Ceph health levels."""

    OK = "HEALTH_OK"
    WARN = "HEALTH_WARN"
    ERR = "HEALTH_ERR"

    #: Severity order used by invariant probes (higher is worse).
    RANK = {OK: 0, WARN: 1, ERR: 2}

    @classmethod
    def severity(cls, status: str) -> int:
        """Numeric severity of a health status (raises on unknown)."""
        return cls.RANK[status]


#: Devices at or beyond this usage ratio are "nearfull" (Ceph default).
NEARFULL_RATIO = 0.85
#: ...and beyond this one, "full".
FULL_RATIO = 0.95


@dataclass(frozen=True)
class HealthReport:
    """One point-in-time health summary."""

    status: str
    osds_total: int
    osds_up: int
    osds_out: int
    pgs_total: int
    pgs_active_clean: int
    pgs_degraded: int
    pgs_undersized: int
    nearfull_osds: tuple
    full_osds: tuple
    checks: tuple
    pgs_inconsistent: int = 0
    pgs_repairing: int = 0
    #: PGs whose pg_log still records stale shards (writes that missed a
    #: replica and have not been delta-repaired yet).
    pgs_dirty_log: int = 0

    def summary(self) -> str:
        lines = [self.status]
        for check in self.checks:
            lines.append(f"  {check}")
        lines.append(
            f"  osd: {self.osds_total} osds: {self.osds_up} up, "
            f"{self.osds_total - self.osds_out} in"
        )
        lines.append(
            f"  pgs: {self.pgs_active_clean} active+clean, "
            f"{self.pgs_degraded} degraded, {self.pgs_undersized} undersized"
        )
        if self.pgs_inconsistent or self.pgs_repairing:
            lines.append(
                f"  scrub: {self.pgs_inconsistent} inconsistent, "
                f"{self.pgs_repairing} repairing"
            )
        return "\n".join(lines)


def check_health(cluster: CephCluster) -> HealthReport:
    """Compute the cluster's current health from live state.

    A PG is *degraded* when any acting-set OSD is down; *undersized*
    when fewer than ``min_size = k + 1`` of its shards are on up OSDs
    (the point where Ceph blocks client I/O).  Any undersized PG, full
    OSD, or scrub-detected *inconsistent* PG raises HEALTH_ERR; degraded
    PGs, down OSDs, nearfull devices, or PGs under scrub repair raise
    HEALTH_WARN.
    """
    osds_up = [osd_id for osd_id, osd in cluster.osds.items() if osd.is_up()]
    down = set(cluster.osds) - set(osds_up)
    out = set(cluster.monitor.out_osds)

    min_size = cluster.pool.code.k + 1
    degraded = 0
    undersized = 0
    clean = 0
    dirty_log = 0
    for pg in cluster.pool.pgs.values():
        if pg.log is not None and pg.log.dirty_shards():
            dirty_log += 1
        up_shards = sum(
            1 for osd_id in pg.acting if cluster.osds[osd_id].is_up()
        )
        if up_shards == len(pg.acting):
            clean += 1
            continue
        degraded += 1
        if up_shards < min_size:
            undersized += 1

    nearfull = []
    full = []
    for osd_id, osd in sorted(cluster.osds.items()):
        usage = osd.disk.used_bytes / osd.disk.spec.capacity_bytes
        if usage >= FULL_RATIO:
            full.append(osd.name)
        elif usage >= NEARFULL_RATIO:
            nearfull.append(osd.name)

    inconsistent = cluster.scrub.pgs_in(ScrubPhase.INCONSISTENT)
    repairing = cluster.scrub.pgs_in(ScrubPhase.REPAIRING)

    checks: List[str] = []
    if down:
        checks.append(f"{len(down)} osds down")
    if out:
        checks.append(f"{len(out)} osds out")
    if degraded:
        checks.append(f"{degraded} pgs degraded")
    if undersized:
        checks.append(f"{undersized} pgs undersized (below min_size)")
    if nearfull:
        checks.append(f"{len(nearfull)} nearfull osd(s)")
    if full:
        checks.append(f"{len(full)} full osd(s)")
    if inconsistent:
        checks.append(f"{inconsistent} pgs inconsistent (scrub errors)")
    if repairing:
        checks.append(f"{repairing} pgs repairing (scrub auto-repair)")
    if dirty_log:
        checks.append(f"{dirty_log} pgs have unrepaired writes (pg_log dirty)")

    if undersized or full or inconsistent:
        status = HealthStatus.ERR
    elif checks:
        status = HealthStatus.WARN
    else:
        status = HealthStatus.OK

    return HealthReport(
        status=status,
        osds_total=len(cluster.osds),
        osds_up=len(osds_up),
        osds_out=len(out),
        pgs_total=len(cluster.pool.pgs),
        pgs_active_clean=clean,
        pgs_degraded=degraded,
        pgs_undersized=undersized,
        nearfull_osds=tuple(nearfull),
        full_osds=tuple(full),
        checks=tuple(checks),
        pgs_inconsistent=inconsistent,
        pgs_repairing=repairing,
        pgs_dirty_log=dirty_log,
    )
