"""Cluster health reporting (a ``ceph status``-style summary).

Derives a HEALTH_OK / HEALTH_WARN / HEALTH_ERR verdict from the live
cluster state: down/out OSDs, degraded and undersized PGs, near-full
devices.  The Coordinator does not depend on this — recovery completion
is tracked from logs, as in the paper — but operators (and the examples)
get the at-a-glance view a real cluster would print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .ceph import CephCluster
from .scrub import ScrubPhase

__all__ = ["HealthStatus", "HealthReport", "check_health"]


class HealthStatus:
    """The three Ceph health levels."""

    OK = "HEALTH_OK"
    WARN = "HEALTH_WARN"
    ERR = "HEALTH_ERR"

    #: Severity order used by invariant probes (higher is worse).
    RANK = {OK: 0, WARN: 1, ERR: 2}

    @classmethod
    def severity(cls, status: str) -> int:
        """Numeric severity of a health status (raises on unknown)."""
        return cls.RANK[status]


#: Devices at or beyond this usage ratio are "nearfull" (Ceph default).
#: Kept as module constants for callers that want the defaults without a
#: config; :func:`check_health` reads the live thresholds from
#: ``cluster.config`` (the ``mon_osd_*_ratio`` family).
NEARFULL_RATIO = 0.85
#: ...beyond this one, new backfill targets stop landing on the OSD...
BACKFILLFULL_RATIO = 0.90
#: ...and beyond this one, "full" (client writes pause cluster-wide).
FULL_RATIO = 0.95


@dataclass(frozen=True)
class HealthReport:
    """One point-in-time health summary."""

    status: str
    osds_total: int
    osds_up: int
    osds_out: int
    pgs_total: int
    pgs_active_clean: int
    pgs_degraded: int
    pgs_undersized: int
    nearfull_osds: tuple
    full_osds: tuple
    checks: tuple
    pgs_inconsistent: int = 0
    pgs_repairing: int = 0
    #: OSDs past the backfillfull ratio: still serving I/O but no longer
    #: eligible as backfill targets (capacity backpressure tier 2).
    backfillfull_osds: tuple = ()
    #: PGs whose pg_log still records stale shards (writes that missed a
    #: replica and have not been delta-repaired yet).
    pgs_dirty_log: int = 0

    def summary(self) -> str:
        lines = [self.status]
        for check in self.checks:
            lines.append(f"  {check}")
        lines.append(
            f"  osd: {self.osds_total} osds: {self.osds_up} up, "
            f"{self.osds_total - self.osds_out} in"
        )
        lines.append(
            f"  pgs: {self.pgs_active_clean} active+clean, "
            f"{self.pgs_degraded} degraded, {self.pgs_undersized} undersized"
        )
        if self.pgs_inconsistent or self.pgs_repairing:
            lines.append(
                f"  scrub: {self.pgs_inconsistent} inconsistent, "
                f"{self.pgs_repairing} repairing"
            )
        return "\n".join(lines)


def check_health(cluster: CephCluster) -> HealthReport:
    """Compute the cluster's current health from live state.

    A PG is *degraded* when any acting-set OSD is down; *undersized*
    when fewer than ``min_size = k + 1`` of its shards are on up OSDs
    (the point where Ceph blocks client I/O).  Any undersized PG, full
    OSD, or scrub-detected *inconsistent* PG raises HEALTH_ERR; degraded
    PGs, down OSDs, nearfull devices, or PGs under scrub repair raise
    HEALTH_WARN.
    """
    osds_up = [osd_id for osd_id, osd in cluster.osds.items() if osd.is_up()]
    down = set(cluster.osds) - set(osds_up)
    out = set(cluster.monitor.out_osds)

    min_size = cluster.pool.code.k + 1
    degraded = 0
    undersized = 0
    clean = 0
    dirty_log = 0
    for pg in cluster.pool.pgs.values():
        if pg.log is not None and pg.log.dirty_shards():
            dirty_log += 1
        up_shards = sum(
            1 for osd_id in pg.acting if cluster.osds[osd_id].is_up()
        )
        if up_shards == len(pg.acting):
            clean += 1
            continue
        degraded += 1
        if up_shards < min_size:
            undersized += 1

    config = cluster.config
    nearfull = []
    backfillfull = []
    full = []
    for osd_id, osd in sorted(cluster.osds.items()):
        usage = osd.disk.usage_ratio
        if usage >= config.mon_osd_full_ratio:
            full.append(osd.name)
        elif usage >= config.mon_osd_backfillfull_ratio:
            backfillfull.append(osd.name)
        elif usage >= config.mon_osd_nearfull_ratio:
            nearfull.append(osd.name)

    inconsistent = cluster.scrub.pgs_in(ScrubPhase.INCONSISTENT)
    repairing = cluster.scrub.pgs_in(ScrubPhase.REPAIRING)

    checks: List[str] = []
    if down:
        checks.append(f"{len(down)} osds down")
    if out:
        checks.append(f"{len(out)} osds out")
    if degraded:
        checks.append(f"{degraded} pgs degraded")
    if undersized:
        checks.append(f"{undersized} pgs undersized (below min_size)")
    if nearfull:
        checks.append(f"{len(nearfull)} nearfull osd(s)")
    if backfillfull:
        checks.append(f"{len(backfillfull)} backfillfull osd(s)")
    if full:
        checks.append(f"{len(full)} full osd(s)")
    if getattr(cluster.monitor, "write_paused", False):
        checks.append("client writes paused (osd(s) at full ratio)")
    if inconsistent:
        checks.append(f"{inconsistent} pgs inconsistent (scrub errors)")
    if repairing:
        checks.append(f"{repairing} pgs repairing (scrub auto-repair)")
    if dirty_log:
        checks.append(f"{dirty_log} pgs have unrepaired writes (pg_log dirty)")

    if undersized or full or inconsistent:
        status = HealthStatus.ERR
    elif checks:
        status = HealthStatus.WARN
    else:
        status = HealthStatus.OK

    return HealthReport(
        status=status,
        osds_total=len(cluster.osds),
        osds_up=len(osds_up),
        osds_out=len(out),
        pgs_total=len(cluster.pool.pgs),
        pgs_active_clean=clean,
        pgs_degraded=degraded,
        pgs_undersized=undersized,
        nearfull_osds=tuple(nearfull),
        full_osds=tuple(full),
        checks=tuple(checks),
        backfillfull_osds=tuple(backfillfull),
        pgs_inconsistent=inconsistent,
        pgs_repairing=repairing,
        pgs_dirty_log=dirty_log,
    )
