"""Ceph-like distributed storage substrate.

Everything the paper's testbed provides, rebuilt as a deterministic
simulation: topology and devices, NVMe-oF virtual disk provisioning,
CRUSH placement, pools/PGs, the BlueStore backend, MON/MGR failure
detection, and the peering + recovery state machine.
"""

from .autoscale import AutoscaleAdvice, autoscale_advice, recommended_pg_num
from .bluestore import CACHE_SCHEMES, BlueStore, BlueStoreCacheModel, CacheConfig
from .ceph import CephCluster
from .client import (
    ClientLoadGenerator,
    ClientOpStats,
    RadosClient,
    ReadFailedError,
    ReadSample,
    ReadStats,
)
from .crush import CrushMap, PlacementError
from .health import HealthReport, HealthStatus, check_health
from .devices import GP_SSD, NEARLINE_HDD, Disk, DiskFailedError, DiskSpec
from .logs import LogRecord, NodeLog
from .monitor import Monitor
from .network import (
    M5_NIC,
    Fabric,
    NetDegradation,
    NetworkPartitionedError,
    Nic,
    NicSpec,
    TransferDroppedError,
)
from .nvme import NvmeSubsystem, NvmeTarget, SubsystemNotFoundError, default_nqn
from .objectstore import ChunkLayout, block_checksums, blocks_in, crc32c, layout_object
from .osd import CephConfig, OsdDaemon
from .pool import PlacementGroup, Pool, StoredObject
from .recovery import RecoveryManager, RecoveryStats
from .retry import DEFAULT_BACKOFF_CAP, retry_backoff, retry_schedule
from .scrub import (
    CorruptionModel,
    IntegrityConfig,
    IntegrityStore,
    ScrubConfig,
    ScrubManager,
    ScrubPhase,
    ScrubRepairError,
    ScrubStats,
)
from .topology import ClusterTopology, FailureDomain, Host, OsdDevice

__all__ = [
    "AutoscaleAdvice",
    "autoscale_advice",
    "recommended_pg_num",
    "CACHE_SCHEMES",
    "BlueStore",
    "BlueStoreCacheModel",
    "CacheConfig",
    "CephCluster",
    "ClientLoadGenerator",
    "ClientOpStats",
    "RadosClient",
    "ReadFailedError",
    "ReadSample",
    "ReadStats",
    "CrushMap",
    "HealthReport",
    "HealthStatus",
    "check_health",
    "PlacementError",
    "GP_SSD",
    "NEARLINE_HDD",
    "Disk",
    "DiskFailedError",
    "DiskSpec",
    "LogRecord",
    "NodeLog",
    "Monitor",
    "M5_NIC",
    "Fabric",
    "NetDegradation",
    "NetworkPartitionedError",
    "Nic",
    "NicSpec",
    "TransferDroppedError",
    "NvmeSubsystem",
    "NvmeTarget",
    "SubsystemNotFoundError",
    "default_nqn",
    "ChunkLayout",
    "layout_object",
    "crc32c",
    "block_checksums",
    "blocks_in",
    "CephConfig",
    "OsdDaemon",
    "PlacementGroup",
    "Pool",
    "StoredObject",
    "RecoveryManager",
    "RecoveryStats",
    "DEFAULT_BACKOFF_CAP",
    "retry_backoff",
    "retry_schedule",
    "CorruptionModel",
    "IntegrityConfig",
    "IntegrityStore",
    "ScrubConfig",
    "ScrubManager",
    "ScrubPhase",
    "ScrubRepairError",
    "ScrubStats",
    "ClusterTopology",
    "FailureDomain",
    "Host",
    "OsdDevice",
]
