"""Object-to-chunk layout: the division-and-padding policy (§4.4).

An object written to an erasure-coded pool is split into k data chunks of
``object_size / k``.  An undersized chunk is padded up to ``stripe_unit``;
an oversized chunk is divided into ``ceil(object_size / (k * stripe_unit))``
encoding units, the last of which is padded to ``stripe_unit``.  Hence the
paper's per-chunk storage formula::

    S_chunk = S_unit * ceil(S_object / (k * S_unit))

Everything downstream — the simulator's I/O charging, the WA measurement,
and the Table 3 / formula-validation benchmarks — derives chunk geometry
from :func:`layout_object` so the policy exists in exactly one place.

The module also owns the *data integrity* primitives BlueStore attaches to
that geometry: a pure-Python crc32c (Castagnoli, the polynomial BlueStore
uses for its per-block checksums) and :func:`block_checksums`, which cuts
a chunk into ``csum_block_size`` blocks and checksums each one.  The scrub
subsystem (:mod:`repro.cluster.scrub`) verifies chunks against exactly
these values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "ChunkLayout",
    "layout_object",
    "crc32c",
    "block_checksums",
    "blocks_in",
]


def _make_crc32c_table() -> List[int]:
    poly = 0x82F63B78  # Castagnoli, reflected.
    table = []
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ (poly if crc & 1 else 0)
        table.append(crc)
    return table


_CRC32C_TABLE = _make_crc32c_table()


def crc32c(data: bytes, value: int = 0) -> int:
    """crc32c (Castagnoli) of ``data``, continuing from ``value``.

    The same checksum BlueStore stores per ``csum_block`` in the onode;
    table-driven pure Python, fast enough for the chunk sizes the
    data-plane tests and examples use.
    """
    crc = value ^ 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def blocks_in(nbytes: int, csum_block_size: int) -> int:
    """Number of checksum blocks covering ``nbytes`` of chunk data."""
    if csum_block_size <= 0:
        raise ValueError(f"csum_block_size must be positive, got {csum_block_size}")
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    return max(1, -(-nbytes // csum_block_size))


def block_checksums(data: bytes, csum_block_size: int) -> Tuple[int, ...]:
    """Per-block crc32c values of one chunk at the given granularity.

    A zero-length chunk still carries one checksum (of the empty block):
    the onode anchors csum metadata the same way it anchors an extent.
    """
    count = blocks_in(len(data), csum_block_size)
    return tuple(
        crc32c(data[i * csum_block_size : (i + 1) * csum_block_size])
        for i in range(count)
    )


@dataclass(frozen=True)
class ChunkLayout:
    """Geometry of one object's EC stripe set.

    ``units`` is the number of stripe-unit encoding extents per chunk;
    ``chunk_stored_bytes`` the padded on-disk size of every chunk.
    """

    object_size: int
    n: int
    k: int
    stripe_unit: int
    units: int
    chunk_stored_bytes: int

    @property
    def chunk_logical_bytes(self) -> float:
        """Unpadded per-chunk share of the object."""
        return self.object_size / self.k

    @property
    def padding_bytes_total(self) -> int:
        """Zero-padding across all k data chunks (parity mirrors data)."""
        return self.k * self.chunk_stored_bytes - self.object_size

    @property
    def stored_bytes_total(self) -> int:
        """Bytes stored across all n chunks, before metadata."""
        return self.n * self.chunk_stored_bytes

    @property
    def stripe_span(self) -> int:
        """Client bytes covered by one full stripe row (k * stripe_unit)."""
        return self.k * self.stripe_unit


def layout_object(object_size: int, n: int, k: int, stripe_unit: int) -> ChunkLayout:
    """Apply the division-and-padding policy to one object.

    Raises ``ValueError`` for non-positive geometry.  A zero-byte object
    still occupies one unit per chunk (the onode must anchor an extent),
    matching BlueStore behaviour.
    """
    if object_size < 0:
        raise ValueError(f"negative object size: {object_size}")
    if not 0 < k < n:
        raise ValueError(f"need 0 < k < n, got k={k}, n={n}")
    if stripe_unit <= 0:
        raise ValueError(f"stripe_unit must be positive, got {stripe_unit}")
    units = max(1, -(-object_size // (k * stripe_unit)))
    return ChunkLayout(
        object_size=object_size,
        n=n,
        k=k,
        stripe_unit=stripe_unit,
        units=units,
        chunk_stored_bytes=units * stripe_unit,
    )
