"""Object-to-chunk layout: the division-and-padding policy (§4.4).

An object written to an erasure-coded pool is split into k data chunks of
``object_size / k``.  An undersized chunk is padded up to ``stripe_unit``;
an oversized chunk is divided into ``ceil(object_size / (k * stripe_unit))``
encoding units, the last of which is padded to ``stripe_unit``.  Hence the
paper's per-chunk storage formula::

    S_chunk = S_unit * ceil(S_object / (k * S_unit))

Everything downstream — the simulator's I/O charging, the WA measurement,
and the Table 3 / formula-validation benchmarks — derives chunk geometry
from :func:`layout_object` so the policy exists in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ChunkLayout", "layout_object"]


@dataclass(frozen=True)
class ChunkLayout:
    """Geometry of one object's EC stripe set.

    ``units`` is the number of stripe-unit encoding extents per chunk;
    ``chunk_stored_bytes`` the padded on-disk size of every chunk.
    """

    object_size: int
    n: int
    k: int
    stripe_unit: int
    units: int
    chunk_stored_bytes: int

    @property
    def chunk_logical_bytes(self) -> float:
        """Unpadded per-chunk share of the object."""
        return self.object_size / self.k

    @property
    def padding_bytes_total(self) -> int:
        """Zero-padding across all k data chunks (parity mirrors data)."""
        return self.k * self.chunk_stored_bytes - self.object_size

    @property
    def stored_bytes_total(self) -> int:
        """Bytes stored across all n chunks, before metadata."""
        return self.n * self.chunk_stored_bytes

    @property
    def stripe_span(self) -> int:
        """Client bytes covered by one full stripe row (k * stripe_unit)."""
        return self.k * self.stripe_unit


def layout_object(object_size: int, n: int, k: int, stripe_unit: int) -> ChunkLayout:
    """Apply the division-and-padding policy to one object.

    Raises ``ValueError`` for non-positive geometry.  A zero-byte object
    still occupies one unit per chunk (the onode must anchor an extent),
    matching BlueStore behaviour.
    """
    if object_size < 0:
        raise ValueError(f"negative object size: {object_size}")
    if not 0 < k < n:
        raise ValueError(f"need 0 < k < n, got k={k}, n={n}")
    if stripe_unit <= 0:
        raise ValueError(f"stripe_unit must be positive, got {stripe_unit}")
    units = max(1, -(-object_size // (k * stripe_unit)))
    return ChunkLayout(
        object_size=object_size,
        n=n,
        k=k,
        stripe_unit=stripe_unit,
        units=units,
        chunk_stored_bytes=units * stripe_unit,
    )
