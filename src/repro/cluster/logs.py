"""DSS-side logging: what the cluster daemons write to their local logs.

These are the *raw* logs of the target system — the input ECFault's
Logger component (``repro.core.logger``) parses, classifies by keyword,
and ships over the log bus.  Keeping emission here and collection in
``repro.core`` mirrors the paper's architecture: the DSS logs as it
normally would; the framework only observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

__all__ = ["LogRecord", "NodeLog"]


@dataclass(frozen=True)
class LogRecord:
    """One log line: timestamp, emitting node, subsystem, message."""

    time: float
    node: str
    subsystem: str  # "mon", "mgr", "osd", "client"
    message: str
    fields: tuple = ()

    def field(self, key: str, default=None):
        """Look up a structured field attached to the record."""
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"[{self.time:10.3f}] {self.node} {self.subsystem}: {self.message}" + (
            f" ({extras})" if extras else ""
        )


class NodeLog:
    """Append-only log of one node (MON host or OSD host)."""

    def __init__(self, node: str):
        self.node = node
        self.records: List[LogRecord] = []

    def emit(self, time: float, subsystem: str, message: str, **fields) -> LogRecord:
        record = LogRecord(
            time=time,
            node=self.node,
            subsystem=subsystem,
            message=message,
            fields=tuple(sorted(fields.items())),
        )
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records)
