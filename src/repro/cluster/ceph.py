"""Cluster facade: one assembled Ceph-like DSS instance.

Ties the substrate together the way §4.1's testbed is wired: a MON/MGR
host, N OSD hosts with virtual NVMe devices, one erasure-coded pool, and
the recovery manager subscribed to osdmap changes.  ECFault (the
``repro.core`` package) treats this object as "the target DSS": it
provisions disks through the per-host NVMe targets, injects faults, and
harvests the logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ec.base import ErasureCode
from ..geo.rules import RegionRule
from ..geo.wan import WanSpec
from ..sim import Environment
from .crush import CrushMap
from .devices import DiskSpec, GP_SSD
from .bluestore import CacheConfig
from .logs import NodeLog
from .monitor import Monitor
from .network import M5_NIC, NicSpec
from .osd import CephConfig, OsdDaemon
from .pool import Pool
from .recovery import RecoveryManager
from .scrub import IntegrityConfig, IntegrityStore, ScrubConfig, ScrubManager
from .topology import ClusterTopology

__all__ = ["WaLedger", "CephCluster", "OVERWRITE_LEDGER_KEYS"]


@dataclass
class WaLedger:
    """Itemised byte ledger behind the WA-conservation invariant.

    Every durable byte an OSD backend accounts must be attributable to
    exactly one of these buckets::

        client + parity_padding + metadata + repair == sum(osd.used_bytes)

    ``client_bytes`` is the logical volume acked to clients;
    ``parity_padding_bytes`` is what EC coding plus division-and-padding
    allocates beyond it at ingest; ``metadata_bytes`` covers onode,
    extent-map, EC-attribute and checksum metadata (ingest and repair
    alike); ``repair_bytes`` is recovery's rebuilt-chunk allocations.
    The equality is exact (integers), which makes it a sharp oracle: any
    accounting drift anywhere in the write paths trips it.
    """

    client_bytes: int = 0
    parity_padding_bytes: int = 0
    metadata_bytes: int = 0
    repair_bytes: int = 0
    #: In-place overwrite volume (full-stripe rewrites and RMW deltas).
    #: Overwrites allocate nothing — BlueStore rewrites the extents in
    #: place — so neither bucket enters :attr:`device_bytes`; they exist
    #: so write-path WA (stored/logical per overwrite) stays observable.
    overwrite_client_bytes: int = 0
    overwrite_stored_bytes: int = 0

    @property
    def device_bytes(self) -> int:
        """What the buckets say the OSDs should be using, in total."""
        return (
            self.client_bytes
            + self.parity_padding_bytes
            + self.metadata_bytes
            + self.repair_bytes
        )

    def credit_ingest(self, object_size: int, allocated: int, metadata: int) -> None:
        self.client_bytes += object_size
        self.parity_padding_bytes += allocated - object_size
        self.metadata_bytes += metadata

    def credit_repair(self, allocated: int, metadata: int) -> None:
        self.repair_bytes += allocated
        self.metadata_bytes += metadata

    def debit_repair(self, allocated: int, metadata: int) -> None:
        """Roll back a speculative repair reservation (push lost to a
        gray fault before the bytes ever landed on the target)."""
        self.repair_bytes -= allocated
        self.metadata_bytes -= metadata

    def credit_chunk(self, allocated: int, metadata: int) -> None:
        """Credit one client-pushed chunk the instant it is stored.

        Degraded writes land chunk by chunk, and the conservation
        invariant is checked at arbitrary instants, so each allocation is
        credited synchronously with ``store_chunk`` (into the padding
        bucket); :meth:`reclassify_ingest` moves the logical share to
        ``client_bytes`` once the whole write commits.
        """
        self.parity_padding_bytes += allocated
        self.metadata_bytes += metadata

    def debit_chunk(self, allocated: int, metadata: int) -> None:
        """Roll back one speculative chunk credit (push failed/aborted)."""
        self.parity_padding_bytes -= allocated
        self.metadata_bytes -= metadata

    def reclassify_ingest(self, object_size: int) -> None:
        """A committed client write: move its logical bytes from the
        padding bucket (where per-chunk credits parked them) to the
        client bucket.  Device totals are untouched, so conservation
        holds across the reclassification."""
        self.client_bytes += object_size
        self.parity_padding_bytes -= object_size

    def credit_overwrite(self, client_bytes: int, stored_bytes: int) -> None:
        """Record an in-place overwrite (no allocation changes)."""
        self.overwrite_client_bytes += client_bytes
        self.overwrite_stored_bytes += stored_bytes


#: WaLedger fields added with the write path — pruned from digests when
#: zero so read-only runs hash identically to the pre-write-path model.
OVERWRITE_LEDGER_KEYS = ("overwrite_client_bytes", "overwrite_stored_bytes")


class CephCluster:
    """An assembled cluster with one erasure-coded pool."""

    def __init__(
        self,
        env: Environment,
        code: ErasureCode,
        cache_config: CacheConfig,
        config: Optional[CephConfig] = None,
        num_hosts: int = 30,
        osds_per_host: int = 2,
        num_racks: int = 1,
        pg_num: int = 256,
        stripe_unit: int = 4096,
        failure_domain: str = "host",
        disk_spec: DiskSpec = GP_SSD,
        nic_spec: NicSpec = M5_NIC,
        placement_seed: int = 0,
        integrity: Optional[IntegrityConfig] = None,
        scrub: Optional[ScrubConfig] = None,
        num_regions: int = 1,
        wan_spec: Optional[WanSpec] = None,
        region_rule: Optional[RegionRule] = None,
    ):
        self.env = env
        self.config = config or CephConfig()
        self.topology = ClusterTopology(
            env,
            num_hosts=num_hosts,
            osds_per_host=osds_per_host,
            num_racks=num_racks,
            disk_spec=disk_spec,
            nic_spec=nic_spec,
            num_regions=num_regions,
            wan_spec=wan_spec,
        )
        self.region_rule = region_rule
        self.host_logs: Dict[int, NodeLog] = {
            host_id: NodeLog(f"host.{host_id}")
            for host_id in self.topology.hosts
        }
        self.mon_log = NodeLog("mon.0")
        self.osds: Dict[int, OsdDaemon] = {
            osd_id: OsdDaemon(env, device, cache_config, self.config)
            for osd_id, device in self.topology.osds.items()
        }
        self.crush = CrushMap(self.topology, seed=placement_seed)
        self.pool = Pool(
            pool_id=1,
            name="ecpool",
            code=code,
            crush=self.crush,
            pg_num=pg_num,
            stripe_unit=stripe_unit,
            failure_domain=failure_domain,
            pg_log_max_entries=self.config.osd_pg_log_max_entries,
            pg_log_hard_limit=self.config.osd_pg_log_hard_limit,
            region_rule=region_rule,
        )
        self.monitor = Monitor(
            env,
            self.osds,
            self.config,
            log=self.mon_log,
            nics={
                osd_id: self.topology.nic_of(osd_id)
                for osd_id in self.topology.osds
            },
        )
        self.ledger = WaLedger()
        self.recovery = RecoveryManager(
            env,
            self.topology,
            self.osds,
            self.pool,
            self.config,
            self.host_logs,
            self.mon_log,
            ledger=self.ledger,
        )
        self.monitor.on_out.append(self.recovery.on_osds_out)
        self.monitor.on_in.append(self.recovery.on_osds_in)
        self.monitor.on_up.append(self.recovery.on_osds_up)
        self.integrity = IntegrityStore(self.pool, integrity or IntegrityConfig())
        self.scrub = ScrubManager(
            env,
            self.topology,
            self.osds,
            self.pool,
            self.integrity,
            scrub or ScrubConfig(),
            self.host_logs,
            self.mon_log,
            monitor=self.monitor,
        )
        #: ByzantineState, attached lazily by ``ensure_byzantine`` when
        #: the first Byzantine fault is injected; None on honest runs so
        #: pre-existing outcome digests stay byte-identical.
        self.byzantine = None

    # -- state ingestion ---------------------------------------------------------

    def ingest_object(self, name: str, size: int) -> None:
        """Place one object and account its chunks on the acting OSDs.

        Ingestion is a state operation (the paper measures recovery and
        storage overhead, not write latency): every chunk is stored with
        full padding/metadata accounting but no simulated I/O time.
        """
        pg = self.pool.put_object(name, size)
        obj = pg.objects[-1]
        layout = obj.layout
        csum_blocks = 0
        csums = {}
        if self.integrity.config.enabled:
            csum_blocks = self.integrity.csum_blocks_for(layout.chunk_stored_bytes)
            csums = self.integrity.register_object(pg, obj)
        alloc_total = 0
        meta_total = 0
        for shard, osd_id in enumerate(pg.acting):
            osd = self.osds[osd_id]
            allocated, metadata = osd.backend.chunk_allocation(
                layout.chunk_stored_bytes, layout.units, csum_blocks
            )
            alloc_total += allocated
            meta_total += metadata
            osd.store_chunk(layout.chunk_stored_bytes, layout.units, csum_blocks)
            if shard in csums:
                osd.backend.put_chunk_checksums((pg.pgid, obj.name, shard), csums[shard])
        self.ledger.credit_ingest(size, alloc_total, meta_total)
        if pg.log is not None:
            # Ingest is a state operation on a healthy cluster: every
            # shard landed, so the create entry carries no missing set.
            pg.log.commit(
                name,
                "create",
                touched=tuple(range(self.pool.code.n)),
                missing=(),
                at=self.env.now,
                staged=False,
            )

    # -- queries ------------------------------------------------------------------

    def used_bytes_total(self) -> int:
        """Cluster-wide OSD-level storage usage (WA measurement point)."""
        return sum(osd.used_bytes for osd in self.osds.values())

    def up_osds(self) -> List[int]:
        return [osd_id for osd_id, osd in self.osds.items() if osd.is_up()]

    def all_logs(self) -> List[NodeLog]:
        return [self.mon_log, *self.host_logs.values()]

    def osds_with_data(self) -> List[int]:
        """OSDs that hold at least one chunk (fault-injection candidates)."""
        return sorted(
            osd_id
            for osd_id, osd in self.osds.items()
            if osd.backend.num_chunks > 0
        )
