"""Host NIC and fabric model.

Each host owns a full-duplex NIC modelled as two service centers (egress
and ingress).  A transfer charges the sender's egress, the receiver's
ingress, and a fixed propagation latency; intra-host transfers are free
(loopback), which is how the failure-locality effects of Figure 2d enter
the simulation — recovery flows that fan into a single surviving host
serialise on that host's ingress.

Gray failures enter here too: a NIC can carry a
:class:`NetDegradation` — packet-loss probability, extra latency, a
bandwidth penalty, or a full partition — and every transfer touching a
degraded endpoint pays for it (``net_degrade`` fault level).  Transfers
through a partitioned or lossy NIC fail with
:class:`NetworkPartitionedError` / :class:`TransferDroppedError`, which
the client and recovery retry machinery catch and back off on.  When no
endpoint is degraded the fast path is byte-identical to the healthy
model — no RNG draws, no extra events — so baseline experiments stay
deterministic across versions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from ..sim import Environment, Event, ServiceCenter

__all__ = [
    "NicSpec",
    "M5_NIC",
    "NetDegradation",
    "Nic",
    "Fabric",
    "TransferDroppedError",
    "NetworkPartitionedError",
]


class TransferDroppedError(RuntimeError):
    """A transfer was lost to packet loss on a degraded link."""


class NetworkPartitionedError(TransferDroppedError):
    """A transfer touched a fully partitioned host."""


@dataclass(frozen=True)
class NicSpec:
    """Static NIC envelope."""

    name: str
    bandwidth: float  # bytes/second each direction
    latency: float  # seconds one-way
    message_overhead: float  # seconds per message (protocol processing)

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")


#: m5.xlarge guests see ~10 Gb/s sustained to the 25 Gb fabric the paper
#: cites; 1.25e9 B/s with a light per-message cost.
M5_NIC = NicSpec(
    name="m5-10g",
    bandwidth=1.25e9,
    latency=0.0002,
    message_overhead=0.00005,
)


@dataclass(frozen=True)
class NetDegradation:
    """Gray-failure state of one NIC (the ``net_degrade`` fault payload).

    ``loss`` is the per-transfer drop probability, ``latency`` an extra
    one-way propagation delay, ``bandwidth_penalty`` a divisor on
    effective throughput, and ``partition`` isolates the host entirely
    (every non-loopback transfer fails).
    """

    loss: float = 0.0
    latency: float = 0.0
    bandwidth_penalty: float = 1.0
    partition: bool = False

    def __post_init__(self):
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss must be in [0, 1], got {self.loss}")
        if self.latency < 0.0:
            raise ValueError("extra latency must be non-negative")
        if self.bandwidth_penalty < 1.0:
            raise ValueError(
                f"bandwidth penalty must be >= 1.0, got {self.bandwidth_penalty}"
            )
        if not (self.partition or self.loss > 0.0 or self.latency > 0.0
                or self.bandwidth_penalty > 1.0):
            raise ValueError("degradation must degrade something")


class Nic:
    """One host's network interface: independent egress/ingress queues."""

    def __init__(self, env: Environment, spec: NicSpec, name: str = ""):
        self.env = env
        self.spec = spec
        self.name = name or spec.name
        self.egress = ServiceCenter(env, servers=1, name=f"{self.name}:tx")
        self.ingress = ServiceCenter(env, servers=1, name=f"{self.name}:rx")
        self.sent_bytes = 0
        self.received_bytes = 0
        #: Active gray degradation, or None when the NIC is healthy.
        self.degradation: Optional[NetDegradation] = None

    def degrade(self, degradation: NetDegradation) -> None:
        """Apply a gray network fault to this NIC (net_degrade level)."""
        self.degradation = degradation

    def restore_network(self) -> None:
        """Clear any gray degradation (fault restore)."""
        self.degradation = None

    @property
    def partitioned(self) -> bool:
        return self.degradation is not None and self.degradation.partition

    def wire_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("negative byte count")
        bandwidth = self.spec.bandwidth
        if self.degradation is not None:
            bandwidth /= self.degradation.bandwidth_penalty
        return self.spec.message_overhead + nbytes / bandwidth


class Fabric:
    """The switch connecting all hosts; assumed non-blocking.

    The paper's testbed is a single 25 Gb AWS network; host NICs are the
    bottleneck, so the fabric itself only adds propagation latency.

    Packet loss is drawn from ``rng`` (reseedable by the Controller);
    the stream is consumed *only* while a degradation is active, so
    healthy runs never touch it and stay byte-identical.
    """

    def __init__(self, env: Environment, rng: Optional[random.Random] = None):
        self.env = env
        self.transfers = 0
        self.drops = 0
        self.partition_refusals = 0
        self.rng = rng if rng is not None else random.Random(0)

    def transfer(self, src: Nic, dst: Nic, nbytes: int) -> Event:
        """Move ``nbytes`` from src host to dst host; fires on delivery.

        On a degraded path the event *fails* with
        :class:`TransferDroppedError` (loss) or
        :class:`NetworkPartitionedError` (partition) — the exception is
        raised at the waiter's ``yield``.
        """
        self.transfers += 1
        return self.env.process(self._run(src, dst, nbytes))

    def _run(self, src: Nic, dst: Nic, nbytes: int) -> Generator:
        if src is dst:
            # Loopback: no NIC time, a token cost for the software path.
            yield self.env.timeout(src.spec.message_overhead)
            return
        yield from self._charge_endpoints(src, dst, nbytes)

    def _charge_endpoints(
        self, src: Nic, dst: Nic, nbytes: int, wan_latency: float = 0.0
    ) -> Generator:
        """The one-hop charge sequence shared with the WAN fabric.

        Every non-loopback transfer — intra-region or not — pays exactly
        this sequence: partition check, sender egress, propagation, loss
        lottery, receiver ingress.  ``wan_latency`` lets a wrapping
        fabric add propagation delay without duplicating the charge
        logic (one NIC pair is still one hop, not one hop per NIC).
        """
        if src.partitioned or dst.partitioned:
            self.partition_refusals += 1
            # The sender only learns by timeout; charge one propagation
            # delay before failing so detection is not instantaneous.
            yield self.env.timeout(src.spec.latency)
            raise NetworkPartitionedError(
                f"transfer {src.name} -> {dst.name} crossed a partition"
            )
        loss = 0.0
        extra_latency = 0.0
        for nic in (src, dst):
            if nic.degradation is not None:
                loss = 1.0 - (1.0 - loss) * (1.0 - nic.degradation.loss)
                extra_latency += nic.degradation.latency
        src.sent_bytes += nbytes
        yield src.egress.request(src.wire_time(nbytes))
        yield self.env.timeout(src.spec.latency + extra_latency + wan_latency)
        if loss > 0.0 and self.rng.random() < loss:
            # The sender burned its egress time for nothing; the
            # receiver never sees the bytes.
            self.drops += 1
            raise TransferDroppedError(
                f"transfer {src.name} -> {dst.name} dropped "
                f"(loss={loss:.3f})"
            )
        dst.received_bytes += nbytes
        yield dst.ingress.request(dst.wire_time(nbytes))
