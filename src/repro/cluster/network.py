"""Host NIC and fabric model.

Each host owns a full-duplex NIC modelled as two service centers (egress
and ingress).  A transfer charges the sender's egress, the receiver's
ingress, and a fixed propagation latency; intra-host transfers are free
(loopback), which is how the failure-locality effects of Figure 2d enter
the simulation — recovery flows that fan into a single surviving host
serialise on that host's ingress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..sim import Environment, Event, ServiceCenter

__all__ = ["NicSpec", "M5_NIC", "Nic", "Fabric"]


@dataclass(frozen=True)
class NicSpec:
    """Static NIC envelope."""

    name: str
    bandwidth: float  # bytes/second each direction
    latency: float  # seconds one-way
    message_overhead: float  # seconds per message (protocol processing)

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")


#: m5.xlarge guests see ~10 Gb/s sustained to the 25 Gb fabric the paper
#: cites; 1.25e9 B/s with a light per-message cost.
M5_NIC = NicSpec(
    name="m5-10g",
    bandwidth=1.25e9,
    latency=0.0002,
    message_overhead=0.00005,
)


class Nic:
    """One host's network interface: independent egress/ingress queues."""

    def __init__(self, env: Environment, spec: NicSpec, name: str = ""):
        self.env = env
        self.spec = spec
        self.name = name or spec.name
        self.egress = ServiceCenter(env, servers=1, name=f"{self.name}:tx")
        self.ingress = ServiceCenter(env, servers=1, name=f"{self.name}:rx")
        self.sent_bytes = 0
        self.received_bytes = 0

    def wire_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("negative byte count")
        return self.spec.message_overhead + nbytes / self.spec.bandwidth


class Fabric:
    """The switch connecting all hosts; assumed non-blocking.

    The paper's testbed is a single 25 Gb AWS network; host NICs are the
    bottleneck, so the fabric itself only adds propagation latency.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.transfers = 0

    def transfer(self, src: Nic, dst: Nic, nbytes: int) -> Event:
        """Move ``nbytes`` from src host to dst host; fires on delivery."""
        self.transfers += 1
        return self.env.process(self._run(src, dst, nbytes))

    def _run(self, src: Nic, dst: Nic, nbytes: int) -> Generator:
        if src is dst:
            # Loopback: no NIC time, a token cost for the software path.
            yield self.env.timeout(src.spec.message_overhead)
            return
        src.sent_bytes += nbytes
        yield src.egress.request(src.wire_time(nbytes))
        yield self.env.timeout(src.spec.latency)
        dst.received_bytes += nbytes
        yield dst.ingress.request(dst.wire_time(nbytes))
