"""MON/MGR model: heartbeats, failure detection, and the down->out clock.

This is where the paper's *System Checking Period* (§4.3) comes from.
After a fault, nothing happens until peers stop seeing heartbeats
(``osd_heartbeat_grace``), the monitor marks the OSD **down**, and — the
dominant term — waits ``mon_osd_down_out_interval`` (600 s by default)
before marking it **out**, which finally changes the CRUSH map and lets
peering and recovery begin.  The monitor logs every step with the same
phrasing the paper's Figure 3 annotates, so the timeline analysis in
``repro.core.timeline`` can segment the recovery cycle from logs alone.

Two gray-failure mechanics live here:

* **Delivery-based detection** — an OSD is marked down after *silence*,
  not after a liveness probe: heartbeats from a partitioned or lossy
  host never arrive (``net_degrade``), so an up-but-unreachable daemon
  is detected exactly like a dead one.
* **Flap dampening** — an OSD marked down more than
  ``mon_osd_markdown_count`` times within ``mon_osd_markdown_period``
  is *pinned* down for ``mon_osd_markdown_pin`` seconds: the monitor
  ignores its heartbeats instead of thrashing osdmap epochs, the
  down->out clock keeps running, and the pin expires on its own so
  health always converges after the fault is restored.

Each OSD heartbeats with a deterministic seeded phase offset (not in
lockstep at t=0, k·interval), so grace-expiry ordering across OSDs is
realistic.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Set

from ..sim import Environment, Event
from ..sim.rng import SeedSequence
from .logs import NodeLog
from .network import Nic
from .osd import CephConfig, OsdDaemon

__all__ = ["Monitor"]


class Monitor:
    """The MON/MGR pair of the cluster (one host in the paper's testbed)."""

    def __init__(
        self,
        env: Environment,
        osds: Dict[int, OsdDaemon],
        config: CephConfig,
        log: Optional[NodeLog] = None,
        nics: Optional[Dict[int, Nic]] = None,
    ):
        self.env = env
        self.osds = osds
        self.config = config
        # `log if log is not None` — an empty NodeLog is falsy (__len__).
        self.log = log if log is not None else NodeLog("mon.0")
        #: Per-OSD NIC map for heartbeat delivery (None => always delivered).
        self.nics = nics
        self.last_heartbeat: Dict[int, float] = {i: 0.0 for i in osds}
        self.down_since: Dict[int, float] = {}
        self.out_osds: Set[int] = set()
        self.osdmap_epoch = 1
        #: Callbacks invoked with the set of newly-out OSDs.
        self.on_out: List[Callable[[Set[int]], None]] = []
        #: Callbacks invoked with the set of newly-in (rebooted) OSDs.
        self.on_in: List[Callable[[Set[int]], None]] = []
        #: Callbacks invoked when a *down* OSD is marked back up before
        #: the down->out interval elapsed — the transient-restart arc
        #: that triggers pg_log delta recovery instead of backfill.
        self.on_up: List[Callable[[Set[int]], None]] = []
        #: Last health status broadcast via :meth:`record_health`.
        self.health_status = "HEALTH_OK"
        #: Duck-typed ByzantineState reference, planted by
        #: ``ensure_byzantine``; None unless a Byzantine fault landed.
        self.byzantine = None
        #: Flap-dampening state: recent markdown timestamps per OSD and
        #: the pin expiry times, plus lifetime counters for digests.
        self.markdown_history: Dict[int, List[float]] = {}
        self.pinned_until: Dict[int, float] = {}
        self.markdowns_total = 0
        self.pins_total = 0
        #: Capacity backpressure: per-OSD capacity tier last observed on
        #: a monitor tick ("ok" / "nearfull" / "backfillfull" / "full"),
        #: used to log transitions once instead of every tick.
        self.capacity_state: Dict[int, str] = {}
        #: Cluster-wide write pause: True while any up OSD sits at or
        #: past ``mon_osd_full_ratio``.  Clients block on
        #: :meth:`write_gate` until the monitor observes usage back
        #: below the ratio and resumes.
        self.write_paused = False
        self.write_pauses_total = 0
        self._resume_event: Optional[Event] = None
        # Deterministic per-OSD heartbeat phase: a seeded draw per OSD in
        # id order, bounded by the interval so the first beat lands well
        # inside the grace window.  Same cluster, same phases, always.
        phase_rng = SeedSequence(0).stream("hb-phase")
        self._phase: Dict[int, float] = {
            osd_id: phase_rng.uniform(0.0, config.osd_heartbeat_interval)
            for osd_id in sorted(osds)
        }
        # Consumed only while a lossy degradation is active, so healthy
        # runs never draw from it (baseline determinism).
        self._loss_rng = SeedSequence(0).stream("hb-loss")
        self._heartbeat_procs = [
            env.process(self._heartbeat_loop(osd_id)) for osd_id in sorted(osds)
        ]
        self._tick_proc = env.process(self._tick_loop())

    # -- daemon-side heartbeats ---------------------------------------------------

    def _heartbeat_loop(self, osd_id: int) -> Generator:
        """Each OSD pings the monitor every heartbeat interval while up."""
        phase = self._phase[osd_id]
        if phase > 0.0:
            yield self.env.timeout(phase)
        while True:
            osd = self.osds[osd_id]
            if osd.is_up() and self._heartbeat_delivered(osd_id):
                if (
                    self.byzantine is not None
                    and self.byzantine.gossiping_stale(osd_id)
                ):
                    # Epoch-mismatch rejection: the heartbeat carries an
                    # osdmap epoch older than the monitor's.  The beat
                    # still proves the daemon alive, but the monitor
                    # rejects the stale gossip and pushes a fresh map —
                    # which ends the lie (detection via the epoch path).
                    claimed = self.byzantine.claimed_epoch(osd_id)
                    self.byzantine.on_epoch_rejection(osd_id, self.env.now)
                    self.log.emit(
                        self.env.now, "mon",
                        "stale osdmap epoch in heartbeat, "
                        "rejecting gossip and pushing fresh map",
                        osd=osd.name, claimed=claimed,
                        epoch=self.osdmap_epoch,
                    )
                self.last_heartbeat[osd_id] = self.env.now
                if self.is_pinned(osd_id):
                    # Dampened: the monitor no longer believes this
                    # OSD's heartbeats until the pin expires.
                    pass
                else:
                    expired_pin = self.pinned_until.pop(osd_id, None)
                    if expired_pin is not None:
                        # A dampening pin ran out with the daemon healthy:
                        # the rejoin is an osdmap event, not a silent one —
                        # the timeline band and the chaos engine both key
                        # off this transition.
                        self.osdmap_epoch += 1
                        self.log.emit(
                            self.env.now, "mon",
                            "flap pin expired, osd rejoining",
                            osd=osd.name, epoch=self.osdmap_epoch,
                        )
                    if osd_id in self.down_since:
                        del self.down_since[osd_id]
                        self.log.emit(
                            self.env.now, "mon", "osd boot: marking up",
                            osd=osd.name,
                        )
                        for callback in self.on_up:
                            callback({osd_id})
                    if osd_id in self.out_osds:
                        self._mark_in(osd_id)
            yield self.env.timeout(self.config.osd_heartbeat_interval)

    def _heartbeat_delivered(self, osd_id: int) -> bool:
        """Did this beat cross the host's (possibly degraded) NIC?"""
        if self.nics is None:
            return True
        nic = self.nics.get(osd_id)
        if nic is None or nic.degradation is None:
            return True
        if nic.degradation.partition:
            return False
        loss = nic.degradation.loss
        if loss <= 0.0:
            return True
        return self._loss_rng.random() >= loss

    def _mark_in(self, osd_id: int) -> None:
        """An auto-marked-out OSD that boots is marked in again.

        Mirrors Ceph's ``mon_osd_auto_mark_auto_out_in`` default: after a
        fault is restored, the rebooted OSD rejoins the map, which is what
        lets cluster health converge back to HEALTH_OK after an
        experiment's restore phase.
        """
        self.out_osds.discard(osd_id)
        self.osdmap_epoch += 1
        self.log.emit(
            self.env.now, "mon", "osd boot: marking in",
            osd=self.osds[osd_id].name, epoch=self.osdmap_epoch,
        )
        for callback in self.on_in:
            callback({osd_id})

    # -- monitor tick: detection and the down->out interval -------------------------

    def _tick_loop(self) -> Generator:
        while True:
            yield self.env.timeout(self.config.mon_tick_interval)
            self._check_failures()
            self._check_down_out()
            # Capacity backpressure piggybacks on the same tick (no
            # extra process, so the event interleaving of pre-cascade
            # runs is untouched).
            self._check_capacity()

    def _check_failures(self) -> None:
        now = self.env.now
        for osd_id, osd in self.osds.items():
            if osd_id in self.down_since or osd_id in self.out_osds:
                continue
            silent_for = now - self.last_heartbeat[osd_id]
            if silent_for > self.config.osd_heartbeat_grace:
                self.down_since[osd_id] = now
                self.osdmap_epoch += 1
                self.markdowns_total += 1
                self.log.emit(
                    now,
                    "mon",
                    "no heartbeats from osd, marking down",
                    osd=osd.name,
                    epoch=self.osdmap_epoch,
                    silent=round(silent_for, 1),
                )
                self.log.emit(
                    now, "mgr", "receiving heartbeats from surviving osds",
                    waiting=len(self.down_since),
                )
                self._note_markdown(osd_id, now)

    def _note_markdown(self, osd_id: int, now: float) -> None:
        """Track markdown frequency and pin a flapping OSD down.

        The markdown budget (count within period) consumed, the OSD is
        pinned: its heartbeats are disbelieved for ``pin`` seconds so
        the down->out clock runs to completion instead of resetting on
        every flap-up.  The history is cleared on pin, so re-pinning
        needs a fresh burst of markdowns.
        """
        history = self.markdown_history.setdefault(osd_id, [])
        history.append(now)
        cutoff = now - self.config.mon_osd_markdown_period
        while history and history[0] < cutoff:
            history.pop(0)
        if len(history) >= self.config.mon_osd_markdown_count:
            self.pinned_until[osd_id] = now + self.config.mon_osd_markdown_pin
            self.pins_total += 1
            self.log.emit(
                now, "mon", "flapping osd pinned down",
                osd=self.osds[osd_id].name,
                markdowns=len(history),
                pin=self.config.mon_osd_markdown_pin,
            )
            history.clear()

    def _check_down_out(self) -> None:
        now = self.env.now
        newly_out: Set[int] = set()
        for osd_id, since in list(self.down_since.items()):
            if now - since >= self.config.mon_osd_down_out_interval:
                del self.down_since[osd_id]
                self.out_osds.add(osd_id)
                newly_out.add(osd_id)
                self.osdmap_epoch += 1
                self.log.emit(
                    now,
                    "mon",
                    "marking osd out after down interval",
                    osd=self.osds[osd_id].name,
                    epoch=self.osdmap_epoch,
                )
        if newly_out:
            self.log.emit(
                now, "mgr", "osdmap changed, checking recovery resources",
                out=len(self.out_osds),
            )
            for callback in self.on_out:
                callback(newly_out)

    # -- capacity backpressure --------------------------------------------------------

    def _capacity_tier(self, osd: OsdDaemon) -> str:
        usage = osd.disk.usage_ratio
        if usage >= self.config.mon_osd_full_ratio:
            return "full"
        if usage >= self.config.mon_osd_backfillfull_ratio:
            return "backfillfull"
        if usage >= self.config.mon_osd_nearfull_ratio:
            return "nearfull"
        return "ok"

    def _check_capacity(self) -> None:
        """Per-OSD capacity tiers and the cluster-wide write pause.

        Runs on every monitor tick.  Tier *transitions* are logged once
        (OSD_NEARFULL / OSD_BACKFILLFULL / OSD_FULL style); the write
        pause engages while any up OSD sits at the full ratio and
        releases — waking every gated client write — once all up OSDs
        are back below it.
        """
        now = self.env.now
        any_full = False
        for osd_id in sorted(self.osds):
            osd = self.osds[osd_id]
            tier = self._capacity_tier(osd)
            if tier == "full" and osd.is_up():
                any_full = True
            previous = self.capacity_state.get(osd_id, "ok")
            if tier == previous:
                continue
            self.capacity_state[osd_id] = tier
            if tier == "ok":
                self.log.emit(
                    now, "mon", "osd capacity back below nearfull",
                    osd=osd.name,
                )
            else:
                check = {
                    "nearfull": "OSD_NEARFULL",
                    "backfillfull": "OSD_BACKFILLFULL",
                    "full": "OSD_FULL",
                }[tier]
                self.log.emit(
                    now, "mon", f"{check}: osd capacity threshold crossed",
                    osd=osd.name,
                    usage=round(osd.disk.usage_ratio, 4),
                )
        if any_full and not self.write_paused:
            self.write_paused = True
            self.write_pauses_total += 1
            self.log.emit(
                now, "mon",
                "osd(s) at full ratio, pausing client writes",
            )
        elif self.write_paused and not any_full:
            self.write_paused = False
            self.log.emit(
                now, "mon",
                "capacity recovered, resuming client writes",
            )
            resume = self._resume_event
            self._resume_event = None
            if resume is not None and not resume.triggered:
                resume.succeed()

    def write_gate(self) -> Optional[Event]:
        """The client-write admission gate.

        Returns ``None`` while writes are admitted (the common case —
        callers skip the yield entirely, keeping unpaused runs
        byte-identical to the pre-backpressure model) or an
        :class:`~repro.sim.Event` that fires when the monitor resumes
        writes after a full-ratio pause.
        """
        if not self.write_paused:
            return None
        if self._resume_event is None:
            self._resume_event = Event(self.env)
        return self._resume_event

    # -- health transitions (scrub / corruption subsystem) ---------------------------

    def record_health(self, status: str, reason: str) -> None:
        """Log a cluster-health transition (deduplicated on status).

        The scrub state machine drives the ``HEALTH_ERR -> HEALTH_WARN ->
        HEALTH_OK`` cycle through this hook as corruption is detected,
        repaired, and cleared; repeated reports of the current status are
        swallowed so the log shows transitions, not heartbeats.
        """
        if status == self.health_status:
            return
        self.health_status = status
        self.log.emit(
            self.env.now, "mon", f"cluster health now {status}", reason=reason
        )

    # -- queries -------------------------------------------------------------------

    def is_pinned(self, osd_id: int) -> bool:
        """Is this OSD's markdown currently dampening-pinned?"""
        return self.env.now < self.pinned_until.get(osd_id, float("-inf"))

    def active_pins(self) -> Dict[int, float]:
        """OSDs with a pin still in force (id -> expiry time)."""
        now = self.env.now
        return {
            osd_id: until
            for osd_id, until in self.pinned_until.items()
            if now < until
        }

    def detection_time(self, osd_id: int) -> Optional[float]:
        """When the OSD was marked down, if it has been."""
        if osd_id in self.down_since:
            return self.down_since[osd_id]
        for record in self.log:
            if (
                record.message.startswith("no heartbeats")
                and record.field("osd") == self.osds[osd_id].name
            ):
                return record.time
        return None

    def is_out(self, osd_id: int) -> bool:
        return osd_id in self.out_osds
