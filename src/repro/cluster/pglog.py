"""Per-PG versioned write logs (Ceph's ``pg_log``).

Every committed write to a placement group appends one entry carrying a
PG-monotone version and the set of shards the write could *not* reach
(down at commit time).  The log is what makes transient failures cheap:
when a briefly-down OSD comes back **up** before the down->out interval,
peering diffs shard versions against the log and repairs only the
objects dirtied during the outage (*delta recovery*) instead of
rebuilding the whole PG (*full backfill*).

Three rules keep the log sound:

* **Version monotonicity** — versions are assigned at commit and only at
  commit, so the entry sequence is strictly increasing even with many
  writes in flight.  Staged (in-flight) writes hold no version; an
  aborted write *rolls back* without ever entering the log — exactly the
  divergent-entry rollback that keeps a primary crash mid-RMW from
  leaving a torn stripe (the physical partial pushes are undone by the
  writer, the log never learns the write happened).
* **Bounded length with a divergence floor** — the log trims down to
  ``max_entries``, but never past the oldest entry some stale shard
  still needs for delta recovery.  If a shard stays divergent so long
  that the log would exceed ``hard_limit``, the shard is marked
  *backfill-required* (its delta information is surrendered), the floor
  advances, and delta recovery for that shard falls back to a full
  object sweep — Ceph's "log too short, backfilling" arc.
* **Per-shard staleness** — each object tracks the version every shard
  last applied.  A shard that missed a write is *stale* until a full
  overwrite lands on it or recovery repairs it; stale shards never serve
  reads and never act as repair sources.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

__all__ = ["PgLogEntry", "PgLog"]

#: Entry kinds: object creation, full-stripe overwrite, partial-stripe
#: read-modify-write.
ENTRY_KINDS = ("create", "full", "rmw")


@dataclass(frozen=True)
class PgLogEntry:
    """One committed write, as the PG log remembers it."""

    version: int
    object_name: str
    kind: str
    #: Shard positions the write modified (parities included).  Shards
    #: outside this set were untouched but stay *consistent* with the
    #: new version (their content is unchanged by definition).
    touched: Tuple[int, ...]
    #: Subset of ``touched`` that never received the write (down or
    #: unreachable at commit) — the dirty set delta recovery replays.
    missing: Tuple[int, ...]
    at: float


class PgLog:
    """Bounded, version-monotone write log of one placement group."""

    def __init__(
        self,
        n_shards: int,
        max_entries: int = 3000,
        hard_limit: Optional[int] = None,
    ):
        if n_shards < 2:
            raise ValueError(f"need >= 2 shards, got {n_shards}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.n_shards = n_shards
        self.max_entries = max_entries
        self.hard_limit = hard_limit if hard_limit is not None else 2 * max_entries
        if self.hard_limit < max_entries:
            raise ValueError("hard_limit must be >= max_entries")
        #: Last committed version (0 = nothing ever committed).
        self.head = 0
        #: Version of the newest *trimmed* entry (retained entries all
        #: have ``version > tail``).
        self.tail = 0
        self.entries: Deque[PgLogEntry] = deque()
        #: Writes staged but not yet committed (in-flight).  They hold no
        #: version; an abort simply unstages (the rollback rule).
        self.inflight = 0
        #: name -> committed object version.
        self.object_version: Dict[str, int] = {}
        #: name -> per-shard last-applied version.
        self.shard_versions: Dict[str, List[int]] = {}
        #: shard -> names of objects stale on that shard.
        self._stale_objs: Dict[int, Set[str]] = {}
        #: (shard, name) -> version of the first unresolved miss — the
        #: entry delta recovery must still be able to see.
        self._stale_since: Dict[Tuple[int, str], int] = {}
        #: Shards whose divergence outlived the log (trimmed past the
        #: floor): delta recovery must fall back to a full backfill.
        self.backfill_shards: Set[int] = set()
        #: (name, shard) pairs whose chunk was never physically stored
        #: (degraded create): repair must allocate, not overwrite.
        self.unstored: Set[Tuple[str, int]] = set()

    # -- the write-side protocol --------------------------------------------------

    def stage(self) -> None:
        """Mark one write in flight (no version is assigned yet)."""
        self.inflight += 1

    def rollback(self) -> None:
        """Abort a staged write: it never enters the log.

        The physical side (partial chunk pushes) is the writer's to undo;
        the log's contract is that an uncommitted write is invisible — no
        version was burned, no entry appended, no shard marked stale.
        """
        if self.inflight < 1:
            raise RuntimeError("rollback without a staged write")
        self.inflight -= 1

    def commit(
        self,
        object_name: str,
        kind: str,
        touched: Tuple[int, ...],
        missing: Tuple[int, ...],
        at: float,
        staged: bool = True,
    ) -> PgLogEntry:
        """Commit one write: assign the next version, update shard state.

        ``missing`` must be a subset of ``touched``.  Shards in
        ``touched - missing`` applied the write and become current;
        shards in ``missing`` become (or stay) stale; untouched shards
        advance to the new version only if they were already current —
        a stale shard stays stale at its old version.
        """
        if kind not in ENTRY_KINDS:
            raise ValueError(f"unknown entry kind {kind!r}; allowed: {ENTRY_KINDS}")
        touched_set = set(touched)
        missing_set = set(missing)
        if not missing_set <= touched_set:
            raise ValueError(
                f"missing shards {sorted(missing_set - touched_set)} not in touched set"
            )
        bad = [s for s in touched_set if not 0 <= s < self.n_shards]
        if bad:
            raise ValueError(f"shards {bad} outside [0, {self.n_shards})")
        if staged:
            if self.inflight < 1:
                raise RuntimeError("commit without a staged write")
            self.inflight -= 1
        version = self.head + 1
        self.head = version
        if object_name not in self.object_version:
            if kind != "create":
                raise ValueError(
                    f"first entry for {object_name!r} must be a create, got {kind!r}"
                )
            self.shard_versions[object_name] = [0] * self.n_shards
        self.object_version[object_name] = version
        versions = self.shard_versions[object_name]
        for shard in range(self.n_shards):
            if shard in missing_set:
                self._mark_stale(object_name, shard, version)
            elif shard in touched_set:
                # The write landed: the shard is current (a full overwrite
                # refreshes even a previously-stale chunk).
                versions[shard] = version
                self._clear_stale(object_name, shard)
            elif not self._is_stale(object_name, shard):
                # Untouched and previously current: content unchanged,
                # still consistent with the new object version.
                versions[shard] = version
            # Untouched and stale: stays stale at its old version.
        entry = PgLogEntry(
            version=version,
            object_name=object_name,
            kind=kind,
            touched=tuple(sorted(touched_set)),
            missing=tuple(sorted(missing_set)),
            at=at,
        )
        self.entries.append(entry)
        self.trim()
        return entry

    # -- staleness bookkeeping ----------------------------------------------------

    def _mark_stale(self, name: str, shard: int, version: int) -> None:
        objs = self._stale_objs.setdefault(shard, set())
        if name not in objs:
            objs.add(name)
            self._stale_since[(shard, name)] = version

    def _clear_stale(self, name: str, shard: int) -> None:
        objs = self._stale_objs.get(shard)
        if objs is not None:
            objs.discard(name)
            if not objs:
                del self._stale_objs[shard]
        self._stale_since.pop((shard, name), None)
        self.unstored.discard((name, shard))
        if shard not in self._stale_objs:
            self.backfill_shards.discard(shard)

    def _is_stale(self, name: str, shard: int) -> bool:
        return name in self._stale_objs.get(shard, ())

    def note_unstored(self, name: str, shard: int) -> None:
        """Record that this shard's chunk was never physically stored."""
        self.unstored.add((name, shard))

    def note_divergent(self, name: str, shard: int) -> None:
        """An *uncommitted* write physically landed on this shard before
        its op aborted: the chunk's content no longer matches the
        committed object version, so it must be repaired like any stale
        shard (Ceph's divergent-entry rollback).  No-op for an object
        the log has never committed (an aborted create leaves nothing)."""
        version = self.object_version.get(name)
        if version is not None:
            self._mark_stale(name, shard, version)

    def is_unstored(self, name: str, shard: int) -> bool:
        return (name, shard) in self.unstored

    # -- recovery-side queries ------------------------------------------------------

    def stale_shards(self, name: str) -> Set[int]:
        """Shard positions holding stale (or never-stored) data for an object."""
        return {
            shard
            for shard, objs in self._stale_objs.items()
            if name in objs
        }

    def stale_since(self, name: str, shard: int) -> Optional[int]:
        """Version of the first write this shard missed for the object."""
        return self._stale_since.get((shard, name))

    def dirty_state(self) -> Tuple[frozenset, frozenset, int]:
        """Snapshot of unresolved divergence (stall detection).

        Two identical snapshots around a repair round with no
        intervening commit mean the round made no progress (e.g. every
        dirty chunk is on a full device) and requeueing would loop.
        """
        return (
            frozenset(self._stale_since),
            frozenset(self.backfill_shards),
            self.head,
        )

    def shard_dirty(self, shard: int) -> bool:
        """Does this shard need repair on any object (stale or backfill)?"""
        return bool(self._stale_objs.get(shard)) or shard in self.backfill_shards

    def dirty_shards(self) -> Set[int]:
        """All shard positions with unrepaired divergence."""
        return {
            shard for shard in range(self.n_shards) if self.shard_dirty(shard)
        }

    def delta_objects(self, shard: int) -> Optional[List[str]]:
        """Objects delta recovery must replay for a shard, oldest first.

        Returns ``None`` when the log was trimmed past the shard's
        divergence point — the log is no longer authoritative and the
        caller must fall back to a full backfill of the shard.
        """
        if shard in self.backfill_shards:
            return None
        names = self._stale_objs.get(shard, set())
        return sorted(names, key=lambda n: (self._stale_since[(shard, n)], n))

    def record_repair(self, name: str, shard: int, version: Optional[int] = None) -> bool:
        """A repair landed current content for (object, shard).

        ``version`` is the object version the repair's content reflects
        (captured when the repair read its sources).  If the object moved
        on since — a write raced the repair — the shard stays stale and
        ``False`` is returned so the caller re-queues.
        """
        current = self.object_version.get(name)
        if current is None:
            return True
        if version is not None and version != current:
            return False
        self.shard_versions[name][shard] = current
        self._clear_stale(name, shard)
        return True

    def clear_backfill(self, shard: int) -> None:
        """A full backfill of the shard completed: divergence resolved."""
        self.backfill_shards.discard(shard)

    # -- trim ------------------------------------------------------------------------

    def divergence_floor(self) -> Optional[int]:
        """Oldest entry version some stale shard still needs (None = none).

        Shards already marked backfill-required have surrendered their
        claim on the log and do not hold the floor down.
        """
        floor: Optional[int] = None
        for (shard, _name), version in self._stale_since.items():
            if shard in self.backfill_shards:
                continue
            if floor is None or version < floor:
                floor = version
        return floor

    def trim(self) -> int:
        """Trim to ``max_entries``, never past the divergence floor —
        unless the hard cap forces it, in which case the blocking shards
        are marked backfill-required first.  Returns entries dropped."""
        dropped = 0
        while len(self.entries) > self.max_entries:
            oldest = self.entries[0]
            floor = self.divergence_floor()
            if floor is not None and oldest.version >= floor:
                if len(self.entries) <= self.hard_limit:
                    break
                # Hard cap: surrender delta state for every shard whose
                # divergence is at or below the entry being dropped.
                for (shard, _name), version in list(self._stale_since.items()):
                    if version <= oldest.version:
                        self.backfill_shards.add(shard)
            self.entries.popleft()
            self.tail = oldest.version
            dropped += 1
        return dropped

    def entries_since(self, version: int) -> Optional[List[PgLogEntry]]:
        """Entries newer than ``version``; None if trimmed past it."""
        if version < self.tail:
            return None
        return [entry for entry in self.entries if entry.version > version]
