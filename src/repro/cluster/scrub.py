"""Scrub & silent-corruption subsystem: integrity state plus deep scrub.

Crash faults (node shutdown, device removal) announce themselves through
missed heartbeats; *silent* corruption — bit rot, torn writes, misdirected
writes — does not.  Real DSS deployments catch it the way Ceph does: every
chunk carries per-block crc32c checksums persisted with its onode, and a
background **deep scrub** re-reads chunks on a schedule, verifies them
against the stored checksums, marks the owning PG ``inconsistent`` and
repairs the damaged chunk through an EC decode.  This module provides both
halves:

* :class:`IntegrityStore` — the per-chunk integrity ledger.  At write time
  it computes crc32c block checksums (``csum_block_size`` granularity) and
  persists them with the chunk's onode in BlueStore.  With the *data
  plane* enabled it also materialises real encoded chunk bytes (payloads
  derived deterministically from the object name), so corruption, checksum
  verification and EC decode-repair operate on actual bits and repairs can
  be asserted bit-identical.  With the data plane off (the default at
  simulation scale) the ledger tracks which checksum blocks a corruption
  damaged without materialising data — detection and repair behave
  identically, byte payloads are simply not stored.

* :class:`ScrubManager` — the scrub scheduler and per-PG deep-scrub state
  machine, running as simulation processes.  Every ``interval`` it starts
  deep scrubs on the next batch of PGs (round-robin), reading every chunk
  at a configurable QoS rate *through the same per-OSD recovery scheduler
  crash repair uses* — scrub repair and failure repair compete for the
  same scarce repair-read bandwidth.  Checksum mismatches flip the PG
  ``active+clean -> inconsistent``; auto-repair then drives an in-place EC
  decode (reads sized to the damaged region via the code's own
  :meth:`~repro.ec.base.ErasureCode.repair_plan`), re-verifies, and
  returns the PG to ``active+clean``.  Cluster health transitions
  ``HEALTH_ERR -> HEALTH_WARN -> HEALTH_OK`` are surfaced through the
  monitor as the cycle progresses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

import numpy as np

from ..ec.repair import traffic_for_plan
from ..sim import Environment
from ..sim.rng import SeedSequence
from .devices import DiskFailedError
from .logs import NodeLog
from .network import TransferDroppedError
from .objectstore import block_checksums, blocks_in, crc32c
from .pool import PlacementGroup, Pool, StoredObject
from .retry import retry_backoff

__all__ = [
    "CorruptionModel",
    "IntegrityConfig",
    "IntegrityStore",
    "ScrubConfig",
    "ScrubPhase",
    "ScrubStats",
    "ScrubRepairError",
    "ScrubManager",
]


class CorruptionModel:
    """The three silent-corruption models the fault injector supports."""

    BIT_ROT = "bit_rot"
    TORN_WRITE = "torn_write"
    MISDIRECTED_WRITE = "misdirected_write"
    ALL = (BIT_ROT, TORN_WRITE, MISDIRECTED_WRITE)


class ScrubRepairError(RuntimeError):
    """A scrub repair produced data that fails checksum re-verification."""


@dataclass(frozen=True)
class IntegrityConfig:
    """Write-time checksum configuration.

    ``csum_block_size`` is the checksum granularity (bytes of chunk data
    per stored crc32c value) — one of the new configuration axes.  With
    ``data_plane`` enabled the store keeps real encoded chunk bytes, so
    repairs are verifiably bit-identical; keep it off for large simulated
    workloads where only the integrity *state* matters.
    """

    enabled: bool = False
    data_plane: bool = False
    csum_block_size: int = 4096
    payload_seed: int = 0

    def __post_init__(self):
        if self.csum_block_size <= 0:
            raise ValueError(
                f"csum_block_size must be positive, got {self.csum_block_size}"
            )


@dataclass
class _ChunkRecord:
    """Integrity state of one stored chunk (one shard of one object)."""

    blocks: int
    expected: Optional[Tuple[int, ...]] = None
    data: Optional[bytes] = None
    corrupt_blocks: Set[int] = field(default_factory=set)
    #: Blocks rewritten by a Byzantine fault *with forged checksums*: the
    #: stored crc32c matches the wrong bytes, so local verify passes.
    #: Only the deep-scrub EC-decode cross-check moves these into
    #: ``corrupt_blocks`` (see :meth:`IntegrityStore.reveal_byzantine`).
    byz_blocks: Set[int] = field(default_factory=set)


class IntegrityStore:
    """Per-chunk checksum ledger and (optionally) real chunk bytes.

    Keys are ``(pgid, object_name, shard)``.  The store is populated by
    :meth:`CephCluster.ingest_object` at write time and consulted by the
    fault injector (to corrupt), the scrub state machine (to verify and
    repair) and the white-box tolerance guard (to count damaged chunks
    per stripe).
    """

    def __init__(self, pool: Pool, config: IntegrityConfig):
        self.pool = pool
        self.config = config
        self._chunks: Dict[tuple, _ChunkRecord] = {}
        #: (pgid, object_name) -> shard indices currently corrupted.
        self._corrupted: Dict[tuple, Set[int]] = {}

    # -- write path --------------------------------------------------------------

    def _payload_for(self, name: str, size: int) -> bytes:
        digest = hashlib.blake2b(
            f"{self.config.payload_seed}:{name}".encode("utf-8"), digest_size=8
        ).digest()
        rng = np.random.default_rng(int.from_bytes(digest, "big"))
        return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()

    def csum_blocks_for(self, chunk_stored_bytes: int) -> int:
        """Checksum blocks (hence onode csum values) one chunk carries."""
        return blocks_in(chunk_stored_bytes, self.config.csum_block_size)

    def register_object(
        self,
        pg: PlacementGroup,
        obj: StoredObject,
        shards: Optional[Set[int]] = None,
    ) -> Dict[int, Tuple[int, ...]]:
        """Compute write-time checksums for shards of one object.

        ``shards`` limits registration to the shard positions a write
        physically reached (``None`` — the ingest path — covers all of
        them).  A registered shard's chunk was just rewritten whole, so
        any silent corruption it carried is physically gone: its
        corruption state is cleared along with the new record.

        Returns ``{shard: csum_tuple}`` for persistence with each acting
        OSD's onode metadata.  In data-plane mode the tuple holds real
        crc32c values of the encoded chunk; otherwise the csum array is
        accounted (the block count is exact) but the values — which would
        never be compared against anything — are not materialised.
        """
        if not self.config.enabled:
            return {}
        targets = (
            list(range(len(pg.acting))) if shards is None else sorted(shards)
        )
        out: Dict[int, Tuple[int, ...]] = {}
        if self.config.data_plane:
            payload = self._payload_for(obj.name, obj.size)
            chunks = self.pool.code.encode(payload)
            for shard in targets:
                data = np.asarray(chunks[shard], dtype=np.uint8).tobytes()
                expected = block_checksums(data, self.config.csum_block_size)
                self._chunks[(pg.pgid, obj.name, shard)] = _ChunkRecord(
                    blocks=len(expected), expected=expected, data=data
                )
                out[shard] = expected
                self._note_rewritten(pg.pgid, obj.name, shard)
        else:
            blocks = self.csum_blocks_for(obj.layout.chunk_stored_bytes)
            for shard in targets:
                self._chunks[(pg.pgid, obj.name, shard)] = _ChunkRecord(blocks=blocks)
                self._note_rewritten(pg.pgid, obj.name, shard)
        return out

    def _note_rewritten(self, pgid: str, object_name: str, shard: int) -> None:
        """A full-chunk overwrite physically replaced this shard's data."""
        shards = self._corrupted.get((pgid, object_name))
        if shards is not None:
            shards.discard(shard)
            if not shards:
                del self._corrupted[(pgid, object_name)]

    # -- corruption (applied by the fault injector through the Workers) -----------

    def corrupt(
        self, pgid: str, object_name: str, shard: int, model: str, rng
    ) -> int:
        """Silently damage one chunk; returns how many blocks went bad."""
        if model not in CorruptionModel.ALL:
            raise ValueError(
                f"unknown corruption model {model!r}; "
                f"allowed models: {', '.join(CorruptionModel.ALL)}"
            )
        record = self._record(pgid, object_name, shard)
        if self.config.data_plane:
            self._corrupt_data(pgid, object_name, shard, record, model, rng)
            bad = self._bad_blocks(record)
        else:
            bad = self._corrupt_model(record, model, rng)
        if not bad:
            raise RuntimeError("corruption left no detectable damage")
        record.corrupt_blocks = set(bad)
        self._corrupted.setdefault((pgid, object_name), set()).add(shard)
        return len(bad)

    def _corrupt_model(self, record: _ChunkRecord, model: str, rng) -> List[int]:
        if model == CorruptionModel.BIT_ROT:
            blocks = [rng.randrange(record.blocks)]
        elif model == CorruptionModel.TORN_WRITE:
            tail = max(1, record.blocks // 4)
            blocks = list(range(record.blocks - tail, record.blocks))
        else:  # misdirected write: the whole chunk is someone else's data
            blocks = list(range(record.blocks))
        return sorted(set(record.corrupt_blocks) | set(blocks))

    def _corrupt_data(
        self, pgid: str, object_name: str, shard: int,
        record: _ChunkRecord, model: str, rng,
    ) -> None:
        data = bytearray(record.data)
        if model == CorruptionModel.BIT_ROT:
            bit = rng.randrange(max(1, len(data) * 8))
            data[bit // 8] ^= 1 << (bit % 8)
        elif model == CorruptionModel.TORN_WRITE:
            tail = max(1, record.blocks // 4)
            start = (record.blocks - tail) * self.config.csum_block_size
            for i in range(max(0, start), len(data)):
                data[i] = 0
        else:
            donor_shard = (shard + 1) % self.pool.code.n
            donor = self._chunks[(pgid, object_name, donor_shard)].data
            data = bytearray(donor[: len(data)].ljust(len(data), b"\0"))
        if bytes(data) == record.data:
            data[0] ^= 0xFF  # degenerate case: force a detectable change
        record.data = bytes(data)

    def _bad_blocks(self, record: _ChunkRecord) -> List[int]:
        actual = block_checksums(record.data, self.config.csum_block_size)
        return [i for i, (a, e) in enumerate(zip(actual, record.expected)) if a != e]

    # -- Byzantine corruption (forged checksums) -----------------------------------

    def corrupt_byzantine(
        self, pgid: str, object_name: str, shard: int, rng
    ) -> int:
        """Rewrite one chunk so its *local* checksums still verify.

        The damage lands in ``byz_blocks`` instead of ``corrupt_blocks``:
        :meth:`verify` (the local crc32c check) stays green, because the
        adversary recomputed the stored checksums over the lie.  The
        shard still joins ``_corrupted`` — it *is* silent damage, so the
        white-box tolerance guards must count it and repair helpers must
        exclude it.  Returns the number of blocks rewritten.
        """
        record = self._record(pgid, object_name, shard)
        if self.config.data_plane:
            # Rewrite the whole chunk with adversary bytes; expected
            # keeps the write-time truth for the eventual repair.
            data = bytearray(record.data)
            for i in range(len(data)):
                data[i] = rng.randrange(256)
            if bytes(data) == record.data:
                data[0] ^= 0xFF
            record.data = bytes(data)
            bad = set(self._bad_blocks(record))
            if not bad:
                raise RuntimeError("byzantine rewrite left no damage")
        else:
            # A believable forgery rewrites the whole chunk — partial
            # rewrites would leave blocks whose true csum survives.
            bad = set(range(record.blocks))
        record.byz_blocks = bad
        self._corrupted.setdefault((pgid, object_name), set()).add(shard)
        return len(bad)

    def byz_shards(self, pgid: str, object_name: str) -> Set[int]:
        """Shards of one stripe carrying unrevealed forged-csum damage."""
        return {
            shard
            for shard in self._corrupted.get((pgid, object_name), set())
            if self._chunks[(pgid, object_name, shard)].byz_blocks
        }

    def reveal_byzantine(
        self, pgid: str, object_name: str, shard: int
    ) -> List[int]:
        """The EC-decode cross-check exposed a forged-csum chunk.

        Moves the hidden damage into ``corrupt_blocks`` so the ordinary
        scrub-repair machinery (and any later local verify) sees it.
        Returns the bad block indices, like :meth:`verify` would.
        """
        record = self._record(pgid, object_name, shard)
        record.corrupt_blocks |= record.byz_blocks
        record.byz_blocks = set()
        return sorted(record.corrupt_blocks)

    def actual_checksums(
        self, pgid: str, object_name: str, shard: int
    ) -> Optional[Tuple[int, ...]]:
        """crc32c over the chunk's *current* bytes (data-plane only) —
        what a lying OSD forges into its onode after a rewrite."""
        if not self.config.data_plane:
            return None
        record = self._record(pgid, object_name, shard)
        return block_checksums(record.data, self.config.csum_block_size)

    def expected_checksums(
        self, pgid: str, object_name: str, shard: int
    ) -> Optional[Tuple[int, ...]]:
        """The write-time truth (data-plane only) — restored to the onode
        when a forged-csum lie is exposed."""
        if not self.config.data_plane:
            return None
        return self._record(pgid, object_name, shard).expected

    # -- verification & repair (driven by the scrub state machine) ----------------

    def verify(
        self, pgid: str, object_name: str, shard: int,
        stored_csums: Optional[Tuple[int, ...]] = None,
    ) -> List[int]:
        """Bad block indices of one chunk (empty when the chunk is clean).

        ``stored_csums`` is the onode-resident csum array read from the
        owning OSD's BlueStore; when provided (data-plane mode) the check
        recomputes crc32c over the chunk bytes and compares against it.
        """
        record = self._record(pgid, object_name, shard)
        if self.config.data_plane:
            expected = stored_csums if stored_csums is not None else record.expected
            actual = block_checksums(record.data, self.config.csum_block_size)
            return [i for i, (a, e) in enumerate(zip(actual, expected)) if a != e]
        return sorted(record.corrupt_blocks)

    def repair(self, pgid: str, object_name: str, shard: int) -> None:
        """EC decode-repair one corrupted chunk in place and re-verify.

        In data-plane mode the chunk is actually rebuilt from the clean
        shards via :meth:`~repro.ec.base.ErasureCode.decode_chunks` and
        must come back bit-identical (checksums match the write-time
        values) or :class:`ScrubRepairError` is raised.
        """
        record = self._record(pgid, object_name, shard)
        if self.config.data_plane:
            bad_shards = self._corrupted.get((pgid, object_name), set())
            available = {
                s: np.frombuffer(
                    self._chunks[(pgid, object_name, s)].data, dtype=np.uint8
                )
                for s in range(self.pool.code.n)
                if s != shard and s not in bad_shards
                and (pgid, object_name, s) in self._chunks
            }
            decoded = self.pool.code.decode_chunks(available, [shard])
            data = np.asarray(decoded[shard], dtype=np.uint8).tobytes()
            if block_checksums(data, self.config.csum_block_size) != record.expected:
                raise ScrubRepairError(
                    f"repair of {pgid}/{object_name} shard {shard} is not "
                    "bit-identical to the original chunk"
                )
            record.data = data
        record.corrupt_blocks.clear()
        record.byz_blocks.clear()
        shards = self._corrupted.get((pgid, object_name))
        if shards is not None:
            shards.discard(shard)
            if not shards:
                del self._corrupted[(pgid, object_name)]

    # -- queries -------------------------------------------------------------------

    def _record(self, pgid: str, object_name: str, shard: int) -> _ChunkRecord:
        try:
            return self._chunks[(pgid, object_name, shard)]
        except KeyError:
            raise KeyError(
                f"no integrity record for {pgid}/{object_name} shard {shard}; "
                "was the object ingested with integrity enabled?"
            ) from None

    def has_record(self, pgid: str, object_name: str, shard: int) -> bool:
        return (pgid, object_name, shard) in self._chunks

    def chunk_data(self, pgid: str, object_name: str, shard: int) -> Optional[bytes]:
        """Current chunk bytes (data-plane mode only)."""
        return self._record(pgid, object_name, shard).data

    def block_count(self, pgid: str, object_name: str, shard: int) -> int:
        return self._record(pgid, object_name, shard).blocks

    def corrupt_shards(self, pgid: str, object_name: str) -> Set[int]:
        """Shards of one stripe currently carrying undetected/unrepaired damage."""
        return set(self._corrupted.get((pgid, object_name), set()))

    def corrupted_chunk_count(self) -> int:
        return sum(len(shards) for shards in self._corrupted.values())

    def max_corrupt_per_stripe(self) -> int:
        """Worst-case unrepaired corruption concentration on one stripe.

        The white-box guard for *crash* faults needs this: a crash takes
        one more shard from every stripe a victim holds, so crash buckets
        plus the worst stripe's outstanding corruption must stay within
        the code's guaranteed tolerance.
        """
        if not self._corrupted:
            return 0
        return max(len(shards) for shards in self._corrupted.values())

    def all_clean(self) -> bool:
        return not self._corrupted


@dataclass(frozen=True)
class ScrubConfig:
    """Scrub scheduler knobs — the new configuration axis.

    ``interval`` is the pause between scrub batches; each batch deep-scrubs
    ``pgs_per_batch`` placement groups (round-robin over the pool), so a
    full-pool pass takes ``interval * pg_num / pgs_per_batch`` plus the
    I/O time of the scans.  ``read_rate`` is the per-OSD QoS share granted
    to scrub reads through the same scheduler recovery reads use.
    """

    enabled: bool = False
    interval: float = 300.0
    pgs_per_batch: int = 4
    read_rate: float = 20e6
    csum_verify_cost: float = 2e-7
    auto_repair: bool = True

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError(f"scrub interval must be positive, got {self.interval}")
        if self.pgs_per_batch < 1:
            raise ValueError(
                f"pgs_per_batch must be >= 1, got {self.pgs_per_batch}"
            )
        if self.read_rate <= 0:
            raise ValueError(f"scrub read_rate must be positive, got {self.read_rate}")


class ScrubPhase:
    """Per-PG deep-scrub state machine states."""

    CLEAN = "active+clean"
    SCRUBBING = "scrubbing"
    INCONSISTENT = "inconsistent"
    REPAIRING = "repairing"


@dataclass
class ScrubStats:
    """Aggregate counters across all scrub cycles of one experiment."""

    cycles: int = 0
    pgs_scrubbed: int = 0
    chunks_scrubbed: int = 0
    bytes_scrubbed: int = 0
    errors_detected: int = 0
    pgs_inconsistent: int = 0
    chunks_repaired: int = 0
    repair_bytes_read: int = 0
    repair_bytes_written: int = 0
    #: Chunk-repair retries forced by gray faults (drops, flapped peers).
    repair_retries: int = 0
    #: Repairs deferred to a later scrub cycle after the retry budget.
    repairs_deferred: int = 0


class ScrubManager:
    """Scrub scheduler plus the per-PG deep-scrub state machine."""

    def __init__(
        self,
        env: Environment,
        topology,
        osds: Dict[int, "OsdDaemon"],
        pool: Pool,
        integrity: IntegrityStore,
        config: ScrubConfig,
        host_logs: Dict[int, NodeLog],
        mgr_log: NodeLog,
        monitor=None,
    ):
        self.env = env
        self.topology = topology
        self.osds = osds
        self.pool = pool
        self.integrity = integrity
        self.config = config
        self.host_logs = host_logs
        self.mgr_log = mgr_log
        self.monitor = monitor
        #: Duck-typed ByzantineState reference, planted by
        #: ``ensure_byzantine`` when the first Byzantine fault lands;
        #: None on every cluster the adversary never touched.
        self.byzantine = None
        self.stats = ScrubStats()
        # Consumed only when a gray fault forces a repair retry, so runs
        # without degradation never draw from it.
        self._retry_rng = SeedSequence(0).stream("scrub-retry")
        self.pg_states: Dict[int, str] = {
            pg_id: ScrubPhase.CLEAN for pg_id in pool.pgs
        }
        self._cursor = 0
        if config.enabled:
            self._proc = env.process(self._scheduler())

    def _log_for(self, osd_id: int) -> NodeLog:
        return self.host_logs[self.osds[osd_id].device.host_id]

    def _health(self, status: str, reason: str) -> None:
        if self.monitor is not None:
            self.monitor.record_health(status, reason)

    # -- state queries ---------------------------------------------------------------

    def pgs_in(self, phase: str) -> int:
        return sum(1 for state in self.pg_states.values() if state == phase)

    def quiescent(self) -> bool:
        """No unrepaired corruption, no PG inconsistent or under repair.

        Routine scrubbing of clean PGs does not count against quiescence
        — the scheduler scrubs forever by design.
        """
        return self.integrity.all_clean() and not any(
            state in (ScrubPhase.INCONSISTENT, ScrubPhase.REPAIRING)
            for state in self.pg_states.values()
        )

    # -- scheduler -------------------------------------------------------------------

    def _scheduler(self) -> Generator:
        pg_ids = sorted(self.pool.pgs)
        while True:
            yield self.env.timeout(self.config.interval)
            self.stats.cycles += 1
            batch: List[PlacementGroup] = []
            seen = 0
            while len(batch) < self.config.pgs_per_batch and seen < len(pg_ids):
                pg = self.pool.pgs[pg_ids[self._cursor % len(pg_ids)]]
                self._cursor += 1
                seen += 1
                if pg.objects:
                    batch.append(pg)
            scans = [self.env.process(self._deep_scrub(pg)) for pg in batch]
            if scans:
                yield self.env.all_of(scans)

    # -- per-PG deep scrub --------------------------------------------------------------

    def _deep_scrub(self, pg: PlacementGroup) -> Generator:
        primary = pg.acting[0]
        self.pg_states[pg.pg_id] = ScrubPhase.SCRUBBING
        self._log_for(primary).emit(
            self.env.now, "osd", "deep-scrub started",
            pg=pg.pgid, objects=len(pg.objects),
        )
        errors: List[tuple] = []
        for obj in pg.objects:
            for shard, osd_id in enumerate(pg.acting):
                osd = self.osds[osd_id]
                if not osd.is_up():
                    continue
                if not self.integrity.has_record(pg.pgid, obj.name, shard):
                    continue
                nbytes = obj.layout.chunk_stored_bytes
                yield osd.scrub_read_grant(nbytes, self.config.read_rate)
                yield osd.read_chunk(nbytes, obj.layout.units)
                blocks = self.integrity.block_count(pg.pgid, obj.name, shard)
                yield osd.cpu.request(blocks * self.config.csum_verify_cost)
                self.stats.chunks_scrubbed += 1
                self.stats.bytes_scrubbed += nbytes
                stored = osd.backend.get_chunk_checksums((pg.pgid, obj.name, shard))
                bad = self.integrity.verify(pg.pgid, obj.name, shard, stored)
                if bad:
                    errors.append((obj, shard, bad))
                    self.stats.errors_detected += 1
                    self._log_for(osd_id).emit(
                        self.env.now, "osd",
                        "scrub error: checksum mismatch on chunk read",
                        pg=pg.pgid, shard=shard, osd=osd.name,
                        bad_blocks=len(bad),
                    )
        if self.byzantine is not None:
            yield from self._byz_cross_checks(pg, errors)
        if not errors:
            self.pg_states[pg.pg_id] = ScrubPhase.CLEAN
            self.stats.pgs_scrubbed += 1
            self._log_for(primary).emit(
                self.env.now, "osd", "deep-scrub ok", pg=pg.pgid
            )
            return
        self.pg_states[pg.pg_id] = ScrubPhase.INCONSISTENT
        self.stats.pgs_inconsistent += 1
        self._log_for(primary).emit(
            self.env.now, "osd", "pg inconsistent, queueing scrub repair",
            pg=pg.pgid, errors=len(errors),
        )
        self._health(
            "HEALTH_ERR", f"pg {pg.pgid} inconsistent ({len(errors)} scrub errors)"
        )
        if not self.config.auto_repair:
            self.stats.pgs_scrubbed += 1
            return
        self.pg_states[pg.pg_id] = ScrubPhase.REPAIRING
        self._health("HEALTH_WARN", f"scrub repair in progress on pg {pg.pgid}")
        self._log_for(primary).emit(
            self.env.now, "osd", "scrub repair started",
            pg=pg.pgid, chunks=len(errors),
        )
        deferred = 0
        for obj, shard, bad in errors:
            repaired = yield from self._repair_chunk(pg, obj, shard, bad)
            if not repaired:
                deferred += 1
        self.stats.pgs_scrubbed += 1
        if deferred:
            # Gray faults starved the repair of helpers or transfers;
            # leave the PG inconsistent so the next scrub cycle retries
            # once the fault window has passed.
            self.pg_states[pg.pg_id] = ScrubPhase.INCONSISTENT
            self.stats.repairs_deferred += deferred
            self._log_for(primary).emit(
                self.env.now, "osd",
                "scrub repair incomplete, deferring to next cycle",
                pg=pg.pgid, deferred=deferred,
            )
            return
        self.pg_states[pg.pg_id] = ScrubPhase.CLEAN
        self._log_for(primary).emit(
            self.env.now, "osd", "scrub repair completed", pg=pg.pgid
        )
        if self.quiescent():
            self._health("HEALTH_OK", "all pgs active+clean after scrub repair")

    # -- Byzantine cross-checks (run once per deep scrub of a PG) ---------------------------

    def _byz_cross_checks(self, pg: PlacementGroup, errors: List[tuple]) -> Generator:
        """Detections local checksum verify can never make.

        *EC-decode cross-check*: for every shard of this PG carrying a
        forged-checksum lie, the primary re-derives the shard from its
        peers' chunks (already read during the scan) and compares.  The
        extra decode is paid as primary CPU; a mismatch reveals the
        forgery, restores the onode's true checksums, and enqueues the
        chunk with the ordinary scrub-repair errors.

        *Version cross-check*: deep scrub compares per-shard object
        versions like peering does, so any undetected false ack on this
        PG becomes ordinary pg_log staleness (healed by delta recovery,
        not checksum repair).
        """
        byz = self.byzantine
        code = self.pool.code
        primary = self.osds[pg.acting[0]]
        for obj in pg.objects:
            for shard in sorted(self.integrity.byz_shards(pg.pgid, obj.name)):
                osd_id = pg.acting[shard]
                if not self.osds[osd_id].is_up():
                    # The liar is down right now; its chunk cannot be
                    # read, so the lie survives until a later cycle.
                    continue
                blocks = self.integrity.block_count(pg.pgid, obj.name, shard)
                # Reconstructing one shard from k peers costs roughly k
                # local verifies' worth of arithmetic on the primary.
                yield primary.cpu.request(
                    blocks * self.config.csum_verify_cost * code.k
                )
                truth = self.integrity.expected_checksums(
                    pg.pgid, obj.name, shard
                )
                if truth is not None:
                    self.osds[osd_id].backend.put_chunk_checksums(
                        (pg.pgid, obj.name, shard), truth
                    )
                bad = self.integrity.reveal_byzantine(pg.pgid, obj.name, shard)
                errors.append((obj, shard, bad))
                self.stats.errors_detected += 1
                byz.detect_corrupt(pg.pgid, obj.name, shard, self.env.now)
                self._log_for(osd_id).emit(
                    self.env.now, "osd",
                    "scrub error: EC cross-check exposed forged checksums",
                    pg=pg.pgid, shard=shard, osd=self.osds[osd_id].name,
                    bad_blocks=len(bad),
                )
        revealed = byz.reveal_false_acks(pg, self.env.now, "scrub")
        if revealed:
            self._log_for(primary.osd_id).emit(
                self.env.now, "osd",
                "scrub version cross-check: acked writes never applied",
                pg=pg.pgid, shards=revealed,
            )

    # -- in-place EC decode-repair of one chunk ---------------------------------------------

    def _repair_chunk(
        self, pg: PlacementGroup, obj: StoredObject, shard: int, bad_blocks: List[int]
    ) -> Generator:
        """Rebuild one damaged chunk from the surviving shards.

        Reads are sized to the damaged region (checksum granularity tells
        the scrubber *which* blocks are bad, so fine granularity shrinks
        repair traffic) and follow the code's own repair plan, then the
        rebuilt region is decoded on the primary and rewritten in place.

        Attempts lost to gray faults (dropped transfers, flapped peers)
        are retried with seeded backoff; past the budget the repair is
        deferred — returns False and the chunk stays corrupted until the
        next scrub cycle finds it again.
        """
        primary = self.osds[pg.acting[0]]
        attempt = 0
        while True:
            ok = yield from self._attempt_repair(pg, obj, shard, bad_blocks)
            if ok:
                return True
            attempt += 1
            if attempt > primary.config.recovery_retry_max:
                return False
            self.stats.repair_retries += 1
            yield self.env.timeout(
                retry_backoff(
                    attempt, primary.config.recovery_retry_base, self._retry_rng
                )
            )

    def _attempt_repair(
        self, pg: PlacementGroup, obj: StoredObject, shard: int, bad_blocks: List[int]
    ) -> Generator:
        """One pull+decode+rewrite attempt; False on any gray-fault loss."""
        code = self.pool.code
        layout = obj.layout
        chunk_bytes = layout.chunk_stored_bytes
        region = min(
            chunk_bytes,
            max(
                len(bad_blocks) * self.integrity.config.csum_block_size,
                self.osds[pg.acting[0]].config.min_io_bytes,
            ),
        )
        region_units = max(1, min(layout.units, -(-region // layout.stripe_unit)))
        corrupted = self.integrity.corrupt_shards(pg.pgid, obj.name)
        alive = [
            s
            for s, osd_id in enumerate(pg.acting)
            if s != shard and s not in corrupted and self.osds[osd_id].is_up()
        ]
        try:
            plan = code.repair_plan([shard], alive)
        except ValueError:
            # Too few helpers up right now (flap window) — retryable.
            return False
        traffic = traffic_for_plan(plan, region, region_units)
        primary = self.osds[pg.acting[0]]
        pulls = [
            self.env.process(self._pull_region(pg, read, traffic, primary))
            for read in plan.reads
        ]
        if pulls:
            results = yield self.env.all_of(pulls)
            if not all(results):
                return False
        fragments = region_units * code.sub_chunk_count
        decode = primary.decode_time(
            output_bytes=region,
            decode_work=plan.decode_work,
            fragments=fragments,
            cpu_cost_factor=getattr(code, "cpu_cost_factor", 1.0),
        )
        yield primary.cpu.request(decode)
        target = self.osds[pg.acting[shard]]
        if not target.is_up():
            return False
        try:
            yield self.topology.fabric.transfer(
                self.topology.nic_of(primary.osd_id),
                self.topology.nic_of(target.osd_id),
                region,
            )
            yield target.recovery_write_grant(region)
            yield target.write_chunk(region, region_units)
        except (TransferDroppedError, DiskFailedError):
            return False
        self.integrity.repair(pg.pgid, obj.name, shard)
        self.stats.chunks_repaired += 1
        self.stats.repair_bytes_written += region
        self._log_for(target.osd_id).emit(
            self.env.now, "osd", "scrub repair rewrote chunk",
            pg=pg.pgid, shard=shard, bytes=region,
        )
        return True

    def _pull_region(
        self, pg: PlacementGroup, read, traffic, primary
    ) -> Generator:
        """Never fails its process; False signals a retryable loss."""
        source = self.osds[pg.acting[read.chunk_index]]
        nbytes = traffic.read_bytes_by_chunk[read.chunk_index]
        try:
            if not source.is_up():
                return False
            yield source.recovery_read_grant(nbytes)
            yield source.read_chunk(
                nbytes, max(1, traffic.read_ops_by_chunk[read.chunk_index])
            )
            self.stats.repair_bytes_read += nbytes
            yield self.topology.fabric.transfer(
                self.topology.nic_of(source.osd_id),
                self.topology.nic_of(primary.osd_id),
                nbytes,
            )
        except (TransferDroppedError, DiskFailedError):
            return False
        return True
