"""CRUSH-style placement: PGs to OSDs under failure-domain constraints.

A straw2-like deterministic pseudo-random draw maps each placement group
to an ordered acting set of n OSDs, at most one per failure-domain
bucket.  The map is a pure function of (pool, pg, osdmap epoch inputs),
so recomputing after an OSD is marked *out* yields the stable remap
behaviour Ceph shows: only shards on departed OSDs move.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .topology import ClusterTopology, FailureDomain

__all__ = ["CrushMap", "PlacementError"]


class PlacementError(RuntimeError):
    """Raised when the cluster cannot satisfy a placement request."""


def _draw(*parts) -> float:
    """Deterministic uniform(0,1] draw from the hashed identifiers."""
    key = ":".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return (int.from_bytes(digest, "big") + 1) / 2.0**64


class CrushMap:
    """Deterministic placement of PG shards across failure domains."""

    def __init__(self, topology: ClusterTopology, seed: int = 0):
        self.topology = topology
        self.seed = seed

    def place_pg(
        self,
        pool_id: int,
        pg_id: int,
        width: int,
        failure_domain: str,
        excluded_osds: Optional[Set[int]] = None,
    ) -> List[int]:
        """Choose an ordered acting set of ``width`` OSDs for one PG.

        Shard i of the PG lives on the i-th returned OSD.  At most one
        shard lands per failure-domain bucket; OSDs in ``excluded_osds``
        (down/out devices) are skipped, shifting only the affected shards
        — the straw2 property that keeps remaps minimal.
        """
        if failure_domain not in FailureDomain.ALL:
            raise ValueError(f"unknown failure domain {failure_domain!r}")
        excluded = excluded_osds or set()
        buckets = self.topology.buckets(failure_domain)
        if width > len(buckets):
            raise PlacementError(
                f"pool {pool_id} needs {width} {failure_domain} buckets, "
                f"cluster has {len(buckets)}"
            )
        # Straw2: every bucket computes an independent weighted draw per
        # (pool, pg); the top-`width` buckets win, in draw order.  The base
        # selection ignores exclusions so that shard positions unaffected
        # by a failure keep their OSDs; excluded shards retry first within
        # their bucket, then pull from the reserve buckets — this is what
        # keeps CRUSH remaps minimal.
        scored = sorted(
            buckets,
            key=lambda b: _draw(self.seed, pool_id, pg_id, failure_domain, b),
            reverse=True,
        )
        base, reserve = scored[:width], scored[width:]
        reserve_iter = iter(reserve)
        acting: List[int] = []
        for bucket in base:
            osd = self._choose_osd_in_bucket(pool_id, pg_id, bucket,
                                             failure_domain, excluded)
            while osd is None:
                try:
                    fallback = next(reserve_iter)
                except StopIteration:
                    raise PlacementError(
                        f"cannot place pg {pool_id}.{pg_id}: only "
                        f"{len(acting)} of {width} shards placeable "
                        f"(excluded={sorted(excluded)})"
                    ) from None
                osd = self._choose_osd_in_bucket(pool_id, pg_id, fallback,
                                                 failure_domain, excluded)
            acting.append(osd)
        return acting

    def _choose_osd_in_bucket(
        self,
        pool_id: int,
        pg_id: int,
        bucket: int,
        failure_domain: str,
        excluded: Set[int],
    ) -> Optional[int]:
        candidates = [
            osd
            for osd in self.topology.osds_in_bucket(bucket, failure_domain)
            if osd not in excluded and not self.topology.osds[osd].disk.failed
        ]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda osd: _draw(self.seed, pool_id, pg_id, "osd", osd)
            * self.topology.osds[osd].weight,
        )

    def remap(
        self,
        pool_id: int,
        pg_id: int,
        width: int,
        failure_domain: str,
        out_osds: Iterable[int],
    ) -> Tuple[List[int], Dict[int, int]]:
        """Recompute an acting set after OSDs leave the map.

        Returns ``(new_acting, moved)`` where ``moved`` maps shard index
        -> replacement OSD for every shard whose OSD changed.
        """
        before = self.place_pg(pool_id, pg_id, width, failure_domain)
        after = self.place_pg(
            pool_id, pg_id, width, failure_domain, excluded_osds=set(out_osds)
        )
        moved = {
            shard: after[shard]
            for shard in range(width)
            if after[shard] != before[shard]
        }
        return after, moved
