"""CRUSH-style placement: PGs to OSDs under failure-domain constraints.

A straw2-like deterministic pseudo-random draw maps each placement group
to an ordered acting set of n OSDs, at most one per failure-domain
bucket.  The map is a pure function of (pool, pg, osdmap epoch inputs),
so recomputing after an OSD is marked *out* yields the stable remap
behaviour Ceph shows: only shards on departed OSDs move.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..geo.rules import RegionRule
from .topology import ClusterTopology, FailureDomain

__all__ = ["CrushMap", "PlacementError"]


class PlacementError(RuntimeError):
    """Raised when the cluster cannot satisfy a placement request."""


def _draw(*parts) -> float:
    """Deterministic uniform(0,1] draw from the hashed identifiers."""
    key = ":".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return (int.from_bytes(digest, "big") + 1) / 2.0**64


class CrushMap:
    """Deterministic placement of PG shards across failure domains."""

    def __init__(self, topology: ClusterTopology, seed: int = 0):
        self.topology = topology
        self.seed = seed

    def place_pg(
        self,
        pool_id: int,
        pg_id: int,
        width: int,
        failure_domain: str,
        excluded_osds: Optional[Set[int]] = None,
        region_rule: Optional[RegionRule] = None,
    ) -> List[int]:
        """Choose an ordered acting set of ``width`` OSDs for one PG.

        Shard i of the PG lives on the i-th returned OSD.  At most one
        shard lands per failure-domain bucket; OSDs in ``excluded_osds``
        (down/out devices) are skipped, shifting only the affected shards
        — the straw2 property that keeps remaps minimal.

        With a ``region_rule`` the placement becomes region-spanning:
        pick ``rule.spread`` regions straw2-style, assign shard slots to
        them round-robin (so stripes stay balanced and no region exceeds
        the rule's per-region cap), then place within each region under
        ``failure_domain`` as usual.
        """
        if failure_domain not in FailureDomain.ALL:
            raise ValueError(f"unknown failure domain {failure_domain!r}")
        excluded = excluded_osds or set()
        if region_rule is not None:
            if failure_domain == FailureDomain.REGION:
                raise ValueError(
                    "a region rule needs a sub-region failure domain"
                )
            return self._place_pg_geo(
                pool_id, pg_id, width, failure_domain, excluded, region_rule
            )
        buckets = self.topology.buckets(failure_domain)
        if width > len(buckets):
            raise PlacementError(
                f"pool {pool_id} needs {width} {failure_domain} buckets, "
                f"cluster has {len(buckets)}"
            )
        # Straw2: every bucket computes an independent weighted draw per
        # (pool, pg); the top-`width` buckets win, in draw order.  The base
        # selection ignores exclusions so that shard positions unaffected
        # by a failure keep their OSDs; excluded shards retry first within
        # their bucket, then pull from the reserve buckets — this is what
        # keeps CRUSH remaps minimal.
        scored = sorted(
            buckets,
            key=lambda b: _draw(self.seed, pool_id, pg_id, failure_domain, b),
            reverse=True,
        )
        base, reserve = scored[:width], scored[width:]
        reserve_iter = iter(reserve)
        acting: List[int] = []
        for bucket in base:
            osd = self._choose_osd_in_bucket(pool_id, pg_id, bucket,
                                             failure_domain, excluded)
            while osd is None:
                try:
                    fallback = next(reserve_iter)
                except StopIteration:
                    raise PlacementError(
                        f"cannot place pg {pool_id}.{pg_id}: only "
                        f"{len(acting)} of {width} shards placeable "
                        f"(excluded={sorted(excluded)})"
                    ) from None
                osd = self._choose_osd_in_bucket(pool_id, pg_id, fallback,
                                                 failure_domain, excluded)
            acting.append(osd)
        return acting

    def _choose_osd_in_bucket(
        self,
        pool_id: int,
        pg_id: int,
        bucket: int,
        failure_domain: str,
        excluded: Set[int],
    ) -> Optional[int]:
        candidates = [
            osd
            for osd in self.topology.osds_in_bucket(bucket, failure_domain)
            if osd not in excluded and not self.topology.osds[osd].disk.failed
        ]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda osd: _draw(self.seed, pool_id, pg_id, "osd", osd)
            * self.topology.osds[osd].weight,
        )

    # -- region-spanning placement (stretch clusters) ----------------

    def _place_pg_geo(
        self,
        pool_id: int,
        pg_id: int,
        width: int,
        failure_domain: str,
        excluded: Set[int],
        rule: RegionRule,
    ) -> List[int]:
        """Region-spanning straw2 placement under a :class:`RegionRule`.

        Like the flat path, the *base* bucket assignment ignores
        exclusions so shards unaffected by a failure keep their OSDs;
        displaced shards retry reserve buckets in their own region first
        (repair locality), then spill to other regions in straw2 order
        — never past the rule's per-region shard cap.
        """
        topo = self.topology
        rule.validate_width(width)
        regions = topo.buckets(FailureDomain.REGION)
        if rule.spread > len(regions):
            raise PlacementError(
                f"pool {pool_id} rule spans {rule.spread} regions, "
                f"cluster has {len(regions)}"
            )
        cap = rule.cap_for(width)
        scored_regions = sorted(
            regions,
            key=lambda r: _draw(self.seed, pool_id, pg_id, "region", r),
            reverse=True,
        )
        chosen = scored_regions[: rule.spread]
        # Per-region bucket rankings under the sub-region failure domain.
        rankings: Dict[int, List[int]] = {}
        for region in regions:
            region_osds = set(
                topo.osds_in_bucket(region, FailureDomain.REGION)
            )
            buckets = sorted(
                {
                    topo.bucket_of(osd, failure_domain)
                    for osd in region_osds
                }
            )
            rankings[region] = sorted(
                buckets,
                key=lambda b: _draw(
                    self.seed, pool_id, pg_id, failure_domain, b
                ),
                reverse=True,
            )
        # Base assignment: the rule's affinity maps each shard to a
        # region slot when the code has sub-stripe locality to protect
        # (LRC local groups stay whole inside one region); otherwise
        # contiguous shard runs per region, mirroring a CRUSH rule of
        # the form `take region / chooseleaf host` which emits each
        # region's picks as a block.  Buckets are consumed in ranking
        # order, at most one shard per bucket.
        if rule.affinity is not None and len(rule.affinity) == width:
            region_of_shard = [chosen[slot] for slot in rule.affinity]
        else:
            quota, extra = divmod(width, rule.spread)
            region_of_shard = []
            for index, region in enumerate(chosen):
                region_of_shard.extend(
                    [region] * (quota + (1 if index < extra else 0))
                )
        used_buckets: Set[Tuple[int, int]] = set()
        cursors = {region: 0 for region in regions}
        base: List[Tuple[int, int]] = []
        counts = {region: 0 for region in regions}
        for shard in range(width):
            region = region_of_shard[shard]
            ranking = rankings[region]
            cursor = cursors[region]
            if cursor >= len(ranking):
                raise PlacementError(
                    f"pool {pool_id} pg {pg_id}: region {region} has only "
                    f"{len(ranking)} {failure_domain} buckets"
                )
            bucket = ranking[cursor]
            cursors[region] = cursor + 1
            used_buckets.add((region, bucket))
            base.append((region, bucket))
            counts[region] += 1
        # Resolve OSDs, spilling displaced shards region-locally first.
        acting: List[int] = []
        for shard in range(width):
            region, bucket = base[shard]
            osd = self._choose_osd_in_bucket(
                pool_id, pg_id, bucket, failure_domain, excluded
            )
            if osd is None:
                counts[region] -= 1
                region, osd = self._geo_fallback(
                    pool_id,
                    pg_id,
                    failure_domain,
                    excluded,
                    region,
                    scored_regions,
                    rankings,
                    used_buckets,
                    counts,
                    cap,
                )
                if osd is None:
                    raise PlacementError(
                        f"cannot place pg {pool_id}.{pg_id}: shard {shard} "
                        f"has no candidate under cap {cap} "
                        f"(excluded={sorted(excluded)})"
                    )
                counts[region] += 1
            acting.append(osd)
        return acting

    def _geo_fallback(
        self,
        pool_id: int,
        pg_id: int,
        failure_domain: str,
        excluded: Set[int],
        home_region: int,
        scored_regions: List[int],
        rankings: Dict[int, List[int]],
        used_buckets: Set[Tuple[int, int]],
        counts: Dict[int, int],
        cap: int,
    ) -> Tuple[int, Optional[int]]:
        """Find a replacement bucket: home region first, then straw2 order."""
        order = [home_region] + [
            r for r in scored_regions if r != home_region
        ]
        for region in order:
            if counts[region] >= cap:
                continue
            for bucket in rankings[region]:
                if (region, bucket) in used_buckets:
                    continue
                osd = self._choose_osd_in_bucket(
                    pool_id, pg_id, bucket, failure_domain, excluded
                )
                if osd is not None:
                    used_buckets.add((region, bucket))
                    return region, osd
        return home_region, None

    def remap(
        self,
        pool_id: int,
        pg_id: int,
        width: int,
        failure_domain: str,
        out_osds: Iterable[int],
        region_rule: Optional[RegionRule] = None,
    ) -> Tuple[List[int], Dict[int, int]]:
        """Recompute an acting set after OSDs leave the map.

        Returns ``(new_acting, moved)`` where ``moved`` maps shard index
        -> replacement OSD for every shard whose OSD changed.
        """
        before = self.place_pg(
            pool_id, pg_id, width, failure_domain, region_rule=region_rule
        )
        after = self.place_pg(
            pool_id,
            pg_id,
            width,
            failure_domain,
            excluded_osds=set(out_osds),
            region_rule=region_rule,
        )
        moved = {
            shard: after[shard]
            for shard in range(width)
            if after[shard] != before[shard]
        }
        return after, moved
