"""Cluster topology: regions, racks, hosts, and OSD devices.

Mirrors the paper's testbed layout — one MON/MGR host plus N OSD hosts,
each attaching virtual NVMe volumes — and provides the failure-domain
bucketing (``osd`` / ``host`` / ``rack`` / ``region``) that CRUSH
placement and the topology-aware fault injector both consume.

Regions are the stretch-cluster tier above racks: hosts are striped
across regions the same way they are striped across racks, and a
multi-region topology swaps the plain :class:`Fabric` for a
:class:`~repro.geo.wan.WanFabric` so cross-region transfers pay WAN
bandwidth, latency, and egress cost.  Single-region topologies build
exactly the pre-geo object graph — same fabric class, same events — so
existing runs stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..geo.wan import DEFAULT_WAN, WanFabric, WanSpec
from ..sim import Environment
from .devices import GP_SSD, Disk, DiskSpec
from .network import M5_NIC, Fabric, Nic, NicSpec

__all__ = ["FailureDomain", "OsdDevice", "Host", "ClusterTopology"]


class FailureDomain:
    """Valid failure-domain levels (Table 1, plus the geo region tier)."""

    OSD = "osd"
    HOST = "host"
    RACK = "rack"
    REGION = "region"
    ALL = (OSD, HOST, RACK, REGION)


@dataclass
class OsdDevice:
    """One OSD: a daemon identity bound to a disk on a host."""

    osd_id: int
    host_id: int
    disk: Disk
    device_class: str = "ssd"
    weight: float = 1.0

    @property
    def name(self) -> str:
        return f"osd.{self.osd_id}"


@dataclass
class Host:
    """One storage server: NIC plus its attached OSDs."""

    host_id: int
    rack_id: int
    nic: Nic
    osd_ids: List[int] = field(default_factory=list)
    #: Stretch-cluster region; 0 for every host in a single-region run.
    region_id: int = 0

    @property
    def name(self) -> str:
        return f"host.{self.host_id}"


class ClusterTopology:
    """The regions/racks/hosts/OSDs tree plus lookup helpers.

    The default shape matches §4.1 of the paper: 30 OSD hosts, two (or
    three, for the failure-mode experiments) OSDs each, one region.
    """

    def __init__(
        self,
        env: Environment,
        num_hosts: int = 30,
        osds_per_host: int = 2,
        num_racks: int = 1,
        disk_spec: DiskSpec = GP_SSD,
        nic_spec: NicSpec = M5_NIC,
        num_regions: int = 1,
        wan_spec: Optional[WanSpec] = None,
    ):
        if num_hosts < 1 or osds_per_host < 1 or num_racks < 1:
            raise ValueError("topology dimensions must be positive")
        if num_racks > num_hosts:
            raise ValueError("more racks than hosts")
        if num_regions < 1:
            raise ValueError("num_regions must be >= 1")
        if num_regions > num_hosts:
            raise ValueError("more regions than hosts")
        self.env = env
        self.disk_spec = disk_spec
        self.nic_spec = nic_spec
        self.num_regions = num_regions
        self.wan_spec = wan_spec if wan_spec is not None else DEFAULT_WAN
        if num_regions > 1:
            self.fabric: Fabric = WanFabric(env, self.wan_spec, num_regions)
        else:
            self.fabric = Fabric(env)
        self.hosts: Dict[int, Host] = {}
        self.osds: Dict[int, OsdDevice] = {}
        osd_id = 0
        for host_id in range(num_hosts):
            nic = Nic(env, nic_spec, name=f"host.{host_id}.nic")
            host = Host(
                host_id=host_id,
                rack_id=host_id % num_racks,
                nic=nic,
                region_id=host_id % num_regions,
            )
            if num_regions > 1:
                self.wan.register_nic(nic, host.region_id)
            for _ in range(osds_per_host):
                disk = Disk(env, disk_spec, name=f"osd.{osd_id}.disk")
                self.osds[osd_id] = OsdDevice(
                    osd_id=osd_id, host_id=host_id, disk=disk
                )
                host.osd_ids.append(osd_id)
                osd_id += 1
            self.hosts[host_id] = host

    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    @property
    def num_osds(self) -> int:
        return len(self.osds)

    @property
    def wan(self) -> Optional[WanFabric]:
        """The WAN fabric, or None on a single-region topology."""
        return self.fabric if isinstance(self.fabric, WanFabric) else None

    def host_of(self, osd_id: int) -> Host:
        return self.hosts[self.osds[osd_id].host_id]

    def nic_of(self, osd_id: int) -> Nic:
        return self.host_of(osd_id).nic

    def region_of(self, osd_id: int) -> int:
        """The region an OSD lives in (0 on single-region topologies)."""
        return self.host_of(osd_id).region_id

    def hosts_in_region(self, region_id: int) -> List[Host]:
        return [
            host
            for host in self.hosts.values()
            if host.region_id == region_id
        ]

    def bucket_of(self, osd_id: int, failure_domain: str) -> int:
        """The failure-domain bucket id an OSD belongs to."""
        if failure_domain == FailureDomain.OSD:
            return osd_id
        if failure_domain == FailureDomain.HOST:
            return self.osds[osd_id].host_id
        if failure_domain == FailureDomain.RACK:
            return self.host_of(osd_id).rack_id
        if failure_domain == FailureDomain.REGION:
            return self.host_of(osd_id).region_id
        raise ValueError(f"unknown failure domain {failure_domain!r}")

    def buckets(self, failure_domain: str) -> List[int]:
        """All bucket ids at the requested level."""
        if failure_domain == FailureDomain.OSD:
            return sorted(self.osds)
        if failure_domain == FailureDomain.HOST:
            return sorted(self.hosts)
        if failure_domain == FailureDomain.RACK:
            return sorted({host.rack_id for host in self.hosts.values()})
        if failure_domain == FailureDomain.REGION:
            return sorted({host.region_id for host in self.hosts.values()})
        raise ValueError(f"unknown failure domain {failure_domain!r}")

    def osds_in_bucket(self, bucket: int, failure_domain: str) -> List[int]:
        """OSD ids inside one failure-domain bucket."""
        if failure_domain == FailureDomain.OSD:
            return [bucket] if bucket in self.osds else []
        if failure_domain == FailureDomain.HOST:
            return list(self.hosts[bucket].osd_ids)
        if failure_domain in (FailureDomain.RACK, FailureDomain.REGION):
            out: List[int] = []
            for host in self.hosts.values():
                bucket_id = (
                    host.rack_id
                    if failure_domain == FailureDomain.RACK
                    else host.region_id
                )
                if bucket_id == bucket:
                    out.extend(host.osd_ids)
            return sorted(out)
        raise ValueError(f"unknown failure domain {failure_domain!r}")
