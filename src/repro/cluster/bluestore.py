"""BlueStore backend model: cache partitions, autotune, and metadata.

Two paper-facing behaviours live here:

* **Cache sensitivity (Fig 2a).**  BlueStore splits its cache between the
  RocksDB block cache (``kv``), the onode cache (``meta``) and the data
  buffer cache (``data``).  During EC recovery the kv partition absorbs
  extent-map lookups on the *read* side and the data partition feeds the
  deferred-write coalescer on the *write* side — and since rebuilt chunks
  funnel into a handful of replacement OSDs, the write side is usually the
  bottleneck.  That asymmetry is what makes ``kv-optimized`` (70/20/10)
  the slowest scheme and ``autotune`` the fastest in the paper.  Hit
  ratios use a saturating ``partition / (partition + working_set)`` law:
  bigger partitions always help, with diminishing returns.

* **Write amplification (Table 3, §4.4).**  Every stored chunk is
  allocated in ``min_alloc_size`` granules and carries onode, extent-map
  and EC-attribute metadata.  :meth:`BlueStore.store_chunk` accounts all
  of it, so the measured "Actual WA Factor" exceeds n/k exactly the way
  the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["CacheConfig", "CACHE_SCHEMES", "BlueStoreCacheModel", "BlueStore"]


@dataclass(frozen=True)
class CacheConfig:
    """BlueStore cache ratios (Table 2 of the paper).

    Ratios are fractions of the OSD cache that go to the RocksDB block
    cache, onode cache and data buffer cache respectively; ``autotune``
    makes BlueStore resize partitions toward the observed miss streams.
    """

    name: str
    kv_ratio: float
    meta_ratio: float
    data_ratio: float
    autotune: bool = False

    def __post_init__(self):
        total = self.kv_ratio + self.meta_ratio + self.data_ratio
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"cache ratios must sum to 1.0, got {total}")
        for ratio in (self.kv_ratio, self.meta_ratio, self.data_ratio):
            if not 0.0 <= ratio <= 1.0:
                raise ValueError("ratios must be within [0, 1]")


#: The paper's three caching configurations (Table 2).
CACHE_SCHEMES: Dict[str, CacheConfig] = {
    "kv-optimized": CacheConfig("kv-optimized", 0.70, 0.20, 0.10),
    "data-optimized": CacheConfig("data-optimized", 0.20, 0.20, 0.60),
    "autotune": CacheConfig("autotune", 0.45, 0.45, 0.10, autotune=True),
}


@dataclass
class WorkingSets:
    """Bytes each cache partition would need for a ~100% hit rate."""

    meta_bytes: float = 0.0
    kv_bytes: float = 0.0
    data_bytes: float = 0.0


class BlueStoreCacheModel:
    """Hit-rate and coalescing model for one OSD's cache."""

    #: Adaptation efficiency of the autotuner: it converges close to, but
    #: not exactly at, the ideal split (resizing lags the miss stream).
    AUTOTUNE_EFFICIENCY = 0.92

    def __init__(self, config: CacheConfig, cache_bytes: float):
        if cache_bytes <= 0:
            raise ValueError("cache_bytes must be positive")
        self.config = config
        self.cache_bytes = float(cache_bytes)

    def partitions(self, working: WorkingSets) -> Tuple[float, float, float]:
        """(kv, meta, data) partition sizes in bytes.

        With autotune enabled, each class is sized as if it could claim
        (nearly) the whole cache — the steady state of BlueStore's
        priority-based resizer when working sets fit in memory: every
        class gets what it asks for while idle classes shrink.  The
        efficiency factor models adaptation lag.  (The three values then
        deliberately over-count the physical cache; they are effective
        sizes for hit-rate purposes, not a memory budget.)
        """
        if not self.config.autotune:
            return (
                self.cache_bytes * self.config.kv_ratio,
                self.cache_bytes * self.config.meta_ratio,
                self.cache_bytes * self.config.data_ratio,
            )
        budget = self.cache_bytes * self.AUTOTUNE_EFFICIENCY
        return (budget, budget, budget)

    @staticmethod
    def _hit(partition: float, working_set: float) -> float:
        if working_set <= 0:
            return 1.0
        return partition / (partition + working_set)

    def hit_rates(self, working: WorkingSets) -> Tuple[float, float, float]:
        """(kv_hit, meta_hit, data_hit) for the given working sets."""
        kv, meta, data = self.partitions(working)
        return (
            self._hit(kv, working.kv_bytes),
            self._hit(meta, working.meta_bytes),
            self._hit(data, working.data_bytes),
        )


class BlueStore:
    """Per-OSD backend: durable layout accounting plus cache-adjusted I/O.

    The owning OSD calls :meth:`store_chunk` as chunks land (workload and
    recovery writes alike) and consults :meth:`read_overhead_ops` /
    :meth:`write_coalescing` when charging recovery I/O to the disk model.
    """

    #: Allocation granule; gp-class NVMe pools run the 4 KiB SSD default.
    min_alloc_size = 4096
    #: Durable metadata footprint per stored chunk (onode key+value).
    onode_bytes = 64
    #: Durable extent-map entry per stripe-unit extent of a chunk.
    extent_entry_bytes = 16
    #: EC shard attributes (hash info, shard id, stripe map) per chunk.
    ec_attr_bytes = 32
    #: Durable crc32c value per checksum block, persisted with the onode.
    #: Charged only when the integrity subsystem registers checksums for a
    #: chunk — the calibrated baseline constants above already absorb the
    #: csum footprint of a stock deployment (see ``csum_bytes_per_data_byte``
    #: in the cache working-set model below).
    csum_value_bytes = 4

    #: In-memory footprints behind the cache working sets.  RocksDB serves
    #: extent lookups in block granules, hence the amplification factor.
    #: A cached onode with its decoded extent map is tens of KiB.
    onode_cache_bytes = 49152
    in_memory_extent_bytes = 256
    kv_block_amplification = 16.0
    #: Per-4KiB-block checksums dominate the RocksDB working set on a
    #: loaded OSD (4 B of csum per 4 KiB of data, block-amplified): this
    #: is what makes the kv partition *bind* at realistic data volumes.
    csum_bytes_per_data_byte = 1.0 / 64.0
    #: Deferred-write buffer demand while recovery writes are in flight.
    recovery_write_buffer_bytes = 512e6
    #: Fraction of write operations the coalescer can merge at 100% data hit.
    max_write_coalescing = 0.6
    #: Onode/extent-map lookups per 4KiB block read, charged against the
    #: meta (onode cache) partition on a miss.
    extent_lookup_rate = 0.05
    #: Csum-block fetches per 4KiB block read, charged against the kv
    #: (RocksDB block cache) partition on a miss.
    csum_lookup_rate = 0.02
    #: Extra extent-map traversals per scattered sub-chunk run.
    run_lookup_ops = 2.0
    #: Disk ops for one onode fetch from RocksDB on a meta miss.
    onode_fetch_ops = 2.0

    def __init__(self, config: CacheConfig, cache_bytes: float = 2.5e9):
        self.cache = BlueStoreCacheModel(config, cache_bytes)
        self.num_chunks = 0
        self.num_extents = 0
        self.data_bytes = 0
        self.alloc_bytes = 0
        self.meta_bytes = 0
        #: Per-chunk crc32c checksum tuples, keyed by the pool-level chunk
        #: key ``(pgid, object_name, shard)`` — the onode-resident csum
        #: array the deep-scrub state machine verifies chunk reads against.
        self.chunk_checksums: Dict[tuple, Tuple[int, ...]] = {}

    # -- durable layout (write amplification) ----------------------------------

    def chunk_allocation(
        self, stored_bytes: int, units: int, csum_blocks: int = 0
    ) -> Tuple[int, int]:
        """(allocated_bytes, metadata_bytes) for one stored chunk.

        ``csum_blocks`` counts the crc32c values persisted with the onode
        (zero when the integrity subsystem is disabled — the baseline
        calibration already absorbs stock csum overhead).
        """
        if stored_bytes < 0 or units < 1 or csum_blocks < 0:
            raise ValueError("invalid chunk geometry")
        granule = self.min_alloc_size
        allocated = -(-stored_bytes // granule) * granule if stored_bytes else 0
        metadata = (
            self.onode_bytes
            + self.ec_attr_bytes
            + units * self.extent_entry_bytes
            + csum_blocks * self.csum_value_bytes
        )
        return allocated, metadata

    def store_chunk(self, stored_bytes: int, units: int, csum_blocks: int = 0) -> int:
        """Account one chunk landing on this OSD; returns bytes consumed."""
        allocated, metadata = self.chunk_allocation(stored_bytes, units, csum_blocks)
        self.num_chunks += 1
        self.num_extents += units
        self.data_bytes += stored_bytes
        self.alloc_bytes += allocated
        self.meta_bytes += metadata
        return allocated + metadata

    def remove_chunk(self, stored_bytes: int, units: int, csum_blocks: int = 0) -> int:
        """Account one chunk leaving this OSD; returns bytes released."""
        allocated, metadata = self.chunk_allocation(stored_bytes, units, csum_blocks)
        self.num_chunks -= 1
        self.num_extents -= units
        self.data_bytes -= stored_bytes
        self.alloc_bytes -= allocated
        self.meta_bytes -= metadata
        return allocated + metadata

    # -- onode checksum persistence (scrub subsystem) ----------------------------

    def put_chunk_checksums(self, key: tuple, csums: Tuple[int, ...]) -> None:
        """Persist a chunk's per-block crc32c array with its onode."""
        self.chunk_checksums[key] = tuple(csums)

    def get_chunk_checksums(self, key: tuple) -> Optional[Tuple[int, ...]]:
        """The stored csum array for a chunk, or None if never registered."""
        return self.chunk_checksums.get(key)

    def drop_chunk_checksums(self, key: tuple) -> None:
        self.chunk_checksums.pop(key, None)

    @property
    def used_bytes(self) -> int:
        """Total durable usage: allocations plus metadata."""
        return self.alloc_bytes + self.meta_bytes

    # -- cache-adjusted I/O costs ------------------------------------------------

    def working_sets(self) -> WorkingSets:
        return WorkingSets(
            meta_bytes=(
                self.num_chunks * self.onode_cache_bytes
                + self.num_extents * self.in_memory_extent_bytes
            ),
            kv_bytes=(
                self.num_extents * self.extent_entry_bytes
                + self.num_chunks * self.onode_bytes
            )
            * self.kv_block_amplification
            + self.data_bytes * self.csum_bytes_per_data_byte,
            data_bytes=self.recovery_write_buffer_bytes,
        )

    def read_overhead_ops(self, nbytes: int, scatter_runs: int = 0) -> float:
        """Extra metadata fetches a recovery read pays for cache misses.

        Onode/extent-map lookups (per 4KiB block touched, plus per
        scattered run) hit the meta partition; csum blocks hit the kv
        partition.  Meta-starved schemes therefore pay on every read and
        sub-packetised reads pay more — the read-side Figure 2a
        mechanism.
        """
        kv_hit, meta_hit, _ = self.cache.hit_rates(self.working_sets())
        blocks = nbytes / 4096.0
        meta_cost = (
            self.onode_fetch_ops
            + blocks * self.extent_lookup_rate
            + scatter_runs * self.run_lookup_ops
        ) * (1.0 - meta_hit)
        kv_cost = blocks * self.csum_lookup_rate * (1.0 - kv_hit)
        return meta_cost + kv_cost

    def write_coalescing(self) -> float:
        """Multiplier (<= 1.0) on write ops from deferred-write merging."""
        _, _, data_hit = self.cache.hit_rates(self.working_sets())
        return 1.0 - self.max_write_coalescing * data_hit
