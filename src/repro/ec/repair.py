"""Repair-traffic accounting helpers.

Turns a :class:`~repro.ec.base.RepairPlan` plus concrete chunk geometry
into byte/operation counts the cluster simulator (and the benchmarks)
charge to disks and NICs.  Keeping this arithmetic in one place means the
"Clay reads 1/q of each helper" property is applied identically in unit
tests, the simulator, and the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from .base import ErasureCode, RepairPlan

__all__ = [
    "RepairTraffic",
    "traffic_for_plan",
    "split_traffic_by_region",
    "compare_repair_bandwidth",
]


@dataclass(frozen=True)
class RepairTraffic:
    """Concrete I/O cost of one stripe repair.

    ``read_bytes_by_chunk`` maps chunk index -> bytes read from that
    helper; ``read_ops_by_chunk`` the disk operations issued there.
    ``write_bytes`` is what lands on the replacement device(s).
    """

    read_bytes_by_chunk: Dict[int, int]
    read_ops_by_chunk: Dict[int, int]
    write_bytes: int
    write_ops: int
    decode_work: float

    @property
    def total_read_bytes(self) -> int:
        return sum(self.read_bytes_by_chunk.values())

    @property
    def total_read_ops(self) -> int:
        return sum(self.read_ops_by_chunk.values())


def traffic_for_plan(
    plan: RepairPlan, chunk_bytes: int, units_per_chunk: int
) -> RepairTraffic:
    """Expand a repair plan into byte/op counts for one stripe.

    ``chunk_bytes`` is the stored size of one chunk; ``units_per_chunk``
    is how many stripe-unit extents a full sequential chunk read touches
    (each extent is one disk operation; sub-chunk plans multiply that by
    the plan's per-extent ``io_ops``).
    """
    if chunk_bytes <= 0 or units_per_chunk <= 0:
        raise ValueError("chunk_bytes and units_per_chunk must be positive")
    read_bytes: Dict[int, int] = {}
    read_ops: Dict[int, int] = {}
    for read in plan.reads:
        read_bytes[read.chunk_index] = int(round(chunk_bytes * read.fraction))
        if read.fraction >= 1.0:
            read_ops[read.chunk_index] = units_per_chunk
        else:
            read_ops[read.chunk_index] = max(units_per_chunk, 1) * read.io_ops
    write_bytes = chunk_bytes * len(plan.lost)
    write_ops = units_per_chunk * len(plan.lost)
    return RepairTraffic(
        read_bytes_by_chunk=read_bytes,
        read_ops_by_chunk=read_ops,
        write_bytes=write_bytes,
        write_ops=write_ops,
        decode_work=plan.decode_work,
    )


def split_traffic_by_region(
    traffic: RepairTraffic,
    region_by_chunk: Dict[int, int],
    primary_region: int,
) -> Dict[str, int]:
    """Split a stripe repair's read bytes into local vs cross-region.

    ``region_by_chunk`` maps chunk index -> region of the shard's host;
    reads whose helper sits outside ``primary_region`` must cross the
    WAN to reach the decoding primary.  This is the analytical side of
    the cross-region accounting the recovery manager does live — the geo
    benchmark and example use it to predict what the DES then measures.
    """
    local = 0
    cross = 0
    for chunk_index, nbytes in traffic.read_bytes_by_chunk.items():
        if region_by_chunk.get(chunk_index, primary_region) == primary_region:
            local += nbytes
        else:
            cross += nbytes
    return {"local_read_bytes": local, "cross_region_read_bytes": cross}


def compare_repair_bandwidth(
    codes: Iterable[ErasureCode], lost: Iterable[int]
) -> Dict[str, float]:
    """Repair bandwidth (in chunk units) per code for the same loss set.

    A quick analytical comparison used by examples and ablations: for
    Clay(12,9,11) vs RS(12,9) and a single loss this reports
    11 * (1/3) ~= 3.67 vs 9.0 chunk reads.
    """
    out: Dict[str, float] = {}
    lost_list = list(lost)
    for code in codes:
        alive = [i for i in range(code.n) if i not in lost_list]
        plan = code.repair_plan(lost_list, alive)
        out[f"{code.plugin_name}({code.n},{code.k})"] = plan.read_fraction_total()
    return out
