"""Locally Repairable Codes (the ``lrc`` plugin).

Azure-style LRC(k, l, r): the k data chunks are split into ``l`` equal
local groups, each protected by one XOR local parity, and ``r`` global
Reed–Solomon parities cover all k data chunks.  Single-chunk failures
repair inside their local group (k/l reads instead of k — the locality
win), while wider failures fall back to a global linear solve.

Chunk layout (matching Ceph's shard ordering for its LRC plugin):
``[data 0..k-1][local parities k..k+l-1][global parities k+l..n-1]``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set

import numpy as np

from .base import (
    ErasureCode,
    InsufficientChunksError,
    RepairPlan,
    RepairRead,
    register_plugin,
)
from .matrix import cauchy, identity, mat_vec_apply, rank, solve
from .galois import addmul_scalar_vector

__all__ = ["LocallyRepairableCode"]


@register_plugin("lrc")
class LocallyRepairableCode(ErasureCode):
    """LRC(k, l, r): l XOR local parities plus r RS global parities."""

    cpu_cost_factor = 1.0

    def __init__(self, k: int, l: int, r: int):
        if l < 1 or r < 0:
            raise ValueError(f"need l >= 1 and r >= 0 (l={l}, r={r})")
        if k % l != 0:
            raise ValueError(f"l={l} must divide k={k}")
        super().__init__(k, l + r)
        self.locality = l
        self.global_parities = r
        self.group_size = k // l
        self.generator = self._build_generator()

    def _build_generator(self) -> np.ndarray:
        """Full n x k generator: identity, local XOR rows, global RS rows."""
        rows: List[np.ndarray] = [identity(self.k)]
        local = np.zeros((self.locality, self.k), dtype=np.uint8)
        for group in range(self.locality):
            start = group * self.group_size
            local[group, start : start + self.group_size] = 1
        rows.append(local)
        if self.global_parities:
            rows.append(cauchy(self.global_parities, self.k))
        return np.vstack(rows)

    def fault_tolerance(self) -> int:
        """Guaranteed tolerance: every r+1-failure pattern hits <= one chunk
        per local group or is covered by the global parities."""
        return self.global_parities + 1 if self.global_parities else 1

    def group_of(self, chunk_index: int) -> int:
        """Local group of a data or local-parity chunk (-1 for globals)."""
        if chunk_index < self.k:
            return chunk_index // self.group_size
        if chunk_index < self.k + self.locality:
            return chunk_index - self.k
        return -1

    def group_members(self, group: int) -> List[int]:
        """Data chunk indices of a local group plus its local parity."""
        start = group * self.group_size
        members = list(range(start, start + self.group_size))
        members.append(self.k + group)
        return members

    def placement_affinity(self, spread: int) -> Optional[List[int]]:
        """Keep each local group in one region slot (Azure-LRC geo layout).

        Group ``g`` goes to slot ``g % spread`` whole — data plus its
        local parity — so single-chunk repair never leaves the region.
        Global parities fill the least-loaded slots.  Falls back to
        ``None`` when the grouped layout would leave a slot empty or
        overflow the balanced per-region cap (the rule's contiguous
        blocks are then the only legal layout anyway).
        """
        if spread <= 1:
            return None
        slots = [0] * self.n
        counts = [0] * spread
        for group in range(self.locality):
            slot = group % spread
            for idx in self.group_members(group):
                slots[idx] = slot
            counts[slot] += self.group_size + 1
        for idx in range(self.k + self.locality, self.n):
            slot = min(range(spread), key=lambda s: (counts[s], s))
            slots[idx] = slot
            counts[slot] += 1
        cap = -(-self.n // spread)
        if max(counts) > cap or min(counts) == 0:
            return None
        return slots

    # -- data path ---------------------------------------------------------

    def encode(self, data: bytes) -> List[np.ndarray]:
        data_chunks = self._split_payload(data)
        parity_rows = self.generator[self.k :]
        return data_chunks + mat_vec_apply(parity_rows, data_chunks)

    def can_recover(self, erased: Iterable[int]) -> bool:
        """Whether this exact erasure pattern is decodable."""
        erased_set = set(erased)
        alive = [i for i in range(self.n) if i not in erased_set]
        return rank(self.generator[alive]) == self.k

    def decode_chunks(
        self, available: Mapping[int, np.ndarray], wanted: Iterable[int]
    ) -> Dict[int, np.ndarray]:
        wanted_list = sorted(set(wanted))
        for idx in wanted_list:
            if not 0 <= idx < self.n:
                raise ValueError(f"chunk index {idx} out of range")
        recovered: Dict[int, np.ndarray] = {
            i: np.asarray(c) for i, c in available.items()
        }
        remaining = [i for i in wanted_list if i not in recovered]
        # Cheap pass: local XOR repairs, possibly cascading between groups.
        progress = True
        while remaining and progress:
            progress = False
            for idx in list(remaining):
                if self._try_local_repair(idx, recovered):
                    remaining.remove(idx)
                    progress = True
        if remaining:
            self._global_solve(recovered)
            for idx in list(remaining):
                if idx not in recovered:
                    raise InsufficientChunksError(
                        f"erasure pattern not recoverable (chunk {idx})"
                    )
                remaining.remove(idx)
        return {i: recovered[i] for i in wanted_list}

    def _try_local_repair(self, idx: int, recovered: Dict[int, np.ndarray]) -> bool:
        group = self.group_of(idx)
        if group < 0:
            return False
        members = self.group_members(group)
        missing = [i for i in members if i not in recovered]
        if missing != [idx]:
            return False
        acc = np.zeros_like(recovered[next(i for i in members if i != idx)])
        for member in members:
            if member != idx:
                np.bitwise_xor(acc, recovered[member], out=acc)
        recovered[idx] = acc
        return True

    def _global_solve(self, recovered: Dict[int, np.ndarray]) -> None:
        """Solve for all data chunks from any k independent surviving rows,
        then re-encode whatever parity chunks are still missing."""
        alive = sorted(recovered)
        chosen = _independent_rows(self.generator, alive, self.k)
        if chosen is None:
            return
        data = solve(self.generator[chosen], [recovered[i] for i in chosen])
        for i in range(self.k):
            recovered.setdefault(i, data[i])
        blocks = [recovered[i] for i in range(self.k)]
        for idx in range(self.k, self.n):
            if idx not in recovered:
                row = self.generator[idx]
                acc = np.zeros_like(blocks[0])
                for j, block in enumerate(blocks):
                    addmul_scalar_vector(acc, int(row[j]), block)
                recovered[idx] = acc

    # -- repair planning -----------------------------------------------------

    def repair_plan(self, lost: Iterable[int], alive: Iterable[int]) -> RepairPlan:
        """Local repair when the pattern allows it, global otherwise."""
        lost_set = set(lost)
        alive_set = set(alive)
        if len(lost_set) == 1:
            (idx,) = lost_set
            group = self.group_of(idx)
            if group >= 0:
                members = [i for i in self.group_members(group) if i != idx]
                if all(i in alive_set for i in members):
                    reads = tuple(
                        RepairRead(chunk_index=i, fraction=1.0, io_ops=1)
                        for i in sorted(members)
                    )
                    return RepairPlan(
                        lost=(idx,), reads=reads, decode_work=0.5
                    )
        chosen = _independent_rows(self.generator, sorted(alive_set), self.k)
        if chosen is None:
            raise InsufficientChunksError("erasure pattern not recoverable")
        reads = tuple(
            RepairRead(chunk_index=i, fraction=1.0, io_ops=1) for i in chosen
        )
        return RepairPlan(lost=tuple(sorted(lost_set)), reads=reads)

    def _validate_failure(self, lost: Iterable[int], alive: Iterable[int]) -> Set[int]:
        # LRC survivors can number fewer than "k arbitrary chunks" rules
        # imply; recoverability is pattern-specific, so defer to rank checks.
        lost_set = set(lost)
        for idx in lost_set | set(alive):
            if not 0 <= idx < self.n:
                raise ValueError(f"chunk index {idx} out of range")
        return lost_set


def _independent_rows(generator: np.ndarray, candidates: List[int], k: int):
    """Greedily pick k candidates whose generator rows are independent."""
    chosen: List[int] = []
    for idx in candidates:
        trial = chosen + [idx]
        if rank(generator[trial]) == len(trial):
            chosen.append(idx)
        if len(chosen) == k:
            return chosen
    return None
