"""Erasure-code substrate: real codes over GF(256) plus repair planning.

Importing this package registers every plugin (``jerasure``, ``isa``,
``clay``, ``lrc``, ``shec``) with the plugin registry, mirroring how a
Ceph build links its erasure-code plugins.
"""

from .base import (
    ChunkUnavailableError,
    ErasureCode,
    InsufficientChunksError,
    RepairPlan,
    RepairRead,
    available_plugins,
    create_plugin,
    register_plugin,
)
from .clay import ClayCode
from .lrc import LocallyRepairableCode
from .reed_solomon import IsaReedSolomon, ReedSolomon
from .repair import (
    RepairTraffic,
    compare_repair_bandwidth,
    split_traffic_by_region,
    traffic_for_plan,
)
from .shec import ShingledErasureCode

__all__ = [
    "ChunkUnavailableError",
    "ErasureCode",
    "InsufficientChunksError",
    "RepairPlan",
    "RepairRead",
    "available_plugins",
    "create_plugin",
    "register_plugin",
    "ClayCode",
    "LocallyRepairableCode",
    "ReedSolomon",
    "IsaReedSolomon",
    "ShingledErasureCode",
    "RepairTraffic",
    "compare_repair_bandwidth",
    "split_traffic_by_region",
    "traffic_for_plan",
]
