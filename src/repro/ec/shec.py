"""SHEC — Shingled Erasure Code (the ``shec`` plugin).

SHEC(k, m, l) computes m parity chunks, each covering a sliding
("shingled") window of l data chunks.  Window i starts at
``floor(i * k / m)`` and wraps modulo k, so consecutive parities overlap
— single failures repair from only l reads (less than k), at the cost of
weaker worst-case multi-failure tolerance than an MDS code.  This matches
the multiple-SHEC layout of Ceph's ``shec`` plugin.

Within a window, coefficients come from a Cauchy matrix so overlapping
parities stay linearly independent for the patterns SHEC is meant to
cover; :meth:`can_recover` reports exactly which patterns decode.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set

import numpy as np

from .base import (
    ErasureCode,
    InsufficientChunksError,
    RepairPlan,
    RepairRead,
    register_plugin,
)
from .galois import addmul_scalar_vector
from .matrix import cauchy, identity, mat_vec_apply, rank, solve

__all__ = ["ShingledErasureCode"]


@register_plugin("shec")
class ShingledErasureCode(ErasureCode):
    """SHEC(k, m, l): m shingled parities over windows of l data chunks."""

    cpu_cost_factor = 0.9

    def __init__(self, k: int, m: int, l: int):
        super().__init__(k, m)
        if not 1 <= l <= k:
            raise ValueError(f"window length l must be in 1..k, got {l}")
        self.window = l
        self.generator = self._build_generator()

    def window_members(self, parity: int) -> List[int]:
        """Data chunk indices covered by parity ``parity`` (wrapping)."""
        if not 0 <= parity < self.m:
            raise ValueError(f"parity index {parity} out of range")
        start = (parity * self.k) // self.m
        return [(start + offset) % self.k for offset in range(self.window)]

    def _build_generator(self) -> np.ndarray:
        coefficients = cauchy(self.m, self.k)
        parity_rows = np.zeros((self.m, self.k), dtype=np.uint8)
        for i in range(self.m):
            for j in self.window_members(i):
                parity_rows[i, j] = coefficients[i, j]
        return np.vstack([identity(self.k), parity_rows])

    def fault_tolerance(self) -> int:
        """SHEC guarantees only single-failure recovery in the worst case;
        many (but not all) multi-failure patterns also decode."""
        return 1

    def can_recover(self, erased: Iterable[int]) -> bool:
        """Whether this exact erasure pattern is decodable."""
        erased_set = set(erased)
        alive = [i for i in range(self.n) if i not in erased_set]
        return rank(self.generator[alive]) == self.k

    # -- data path ---------------------------------------------------------

    def encode(self, data: bytes) -> List[np.ndarray]:
        data_chunks = self._split_payload(data)
        return data_chunks + mat_vec_apply(self.generator[self.k :], data_chunks)

    def decode_chunks(
        self, available: Mapping[int, np.ndarray], wanted: Iterable[int]
    ) -> Dict[int, np.ndarray]:
        wanted_list = sorted(set(wanted))
        recovered: Dict[int, np.ndarray] = {
            i: np.asarray(c) for i, c in available.items()
        }
        alive = sorted(recovered)
        chosen = self._independent(alive)
        if chosen is None:
            raise InsufficientChunksError("erasure pattern not recoverable by SHEC")
        data = solve(self.generator[chosen], [recovered[i] for i in chosen])
        for i in range(self.k):
            recovered.setdefault(i, data[i])
        out: Dict[int, np.ndarray] = {}
        blocks = [recovered[i] for i in range(self.k)]
        for idx in wanted_list:
            if idx in recovered:
                out[idx] = recovered[idx]
                continue
            row = self.generator[idx]
            acc = np.zeros_like(blocks[0])
            for j, block in enumerate(blocks):
                addmul_scalar_vector(acc, int(row[j]), block)
            out[idx] = acc
        return out

    def _independent(self, candidates: List[int]):
        chosen: List[int] = []
        for idx in candidates:
            trial = chosen + [idx]
            if rank(self.generator[trial]) == len(trial):
                chosen.append(idx)
            if len(chosen) == self.k:
                return chosen
        return None

    # -- repair planning -----------------------------------------------------

    def repair_plan(self, lost: Iterable[int], alive: Iterable[int]) -> RepairPlan:
        """Single losses read one covering window; otherwise a global solve."""
        lost_set = set(lost)
        alive_set = set(alive)
        if len(lost_set) == 1:
            (idx,) = lost_set
            members = self._cheapest_window(idx, alive_set)
            if members is not None:
                reads = tuple(
                    RepairRead(chunk_index=i, fraction=1.0, io_ops=1)
                    for i in sorted(members)
                )
                return RepairPlan(lost=(idx,), reads=reads, decode_work=0.6)
        chosen = self._independent(sorted(alive_set))
        if chosen is None:
            raise InsufficientChunksError("erasure pattern not recoverable by SHEC")
        reads = tuple(
            RepairRead(chunk_index=i, fraction=1.0, io_ops=1) for i in chosen
        )
        return RepairPlan(lost=tuple(sorted(lost_set)), reads=reads)

    def _cheapest_window(self, idx: int, alive: Set[int]):
        """Smallest all-alive read set that rebuilds chunk ``idx`` locally."""
        if idx >= self.k:
            members = self.window_members(idx - self.k)
            if all(i in alive for i in members):
                return members
            return None
        best = None
        for parity in range(self.m):
            members = self.window_members(parity)
            if idx not in members:
                continue
            needed = [i for i in members if i != idx] + [self.k + parity]
            if all(i in alive for i in needed):
                if best is None or len(needed) < len(best):
                    best = needed
        return best

    def _validate_failure(self, lost: Iterable[int], alive: Iterable[int]) -> Set[int]:
        lost_set = set(lost)
        for idx in lost_set | set(alive):
            if not 0 <= idx < self.n:
                raise ValueError(f"chunk index {idx} out of range")
        return lost_set
