"""Matrix algebra over GF(256).

Matrices are ``numpy.uint8`` 2-D arrays.  These routines back every code in
the package: Vandermonde/Cauchy generator construction for Reed–Solomon,
sub-matrix inversion for decoding, and general linear solves for LRC and
SHEC global repairs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .galois import addmul_scalar_vector, gf_inv, gf_mul, gf_pow

__all__ = [
    "SingularMatrixError",
    "matmul",
    "mat_vec_apply",
    "identity",
    "invert",
    "rank",
    "solve",
    "vandermonde",
    "cauchy",
    "systematic_vandermonde_generator",
]


class SingularMatrixError(ValueError):
    """Raised when a decode requires inverting a singular matrix."""


def identity(size: int) -> np.ndarray:
    """The size x size identity matrix over GF(256)."""
    return np.identity(size, dtype=np.uint8)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256)."""
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        row = out[i]
        for j in range(a.shape[1]):
            addmul_scalar_vector(row, int(a[i, j]), b[j])
    return out


def mat_vec_apply(matrix: np.ndarray, vectors: Sequence[np.ndarray]) -> list:
    """Apply ``matrix`` to a block vector of equal-length uint8 arrays.

    ``vectors[j]`` is the j-th input block; the result is a list of output
    blocks, ``out[i] = XOR_j matrix[i][j] * vectors[j]``.  This is the bulk
    encode/decode path: each block may be megabytes.
    """
    if matrix.shape[1] != len(vectors):
        raise ValueError(
            f"matrix has {matrix.shape[1]} columns but {len(vectors)} blocks given"
        )
    length = len(vectors[0]) if vectors else 0
    for vec in vectors:
        if len(vec) != length:
            raise ValueError("all blocks must have equal length")
    outputs = []
    for i in range(matrix.shape[0]):
        acc = np.zeros(length, dtype=np.uint8)
        for j, vec in enumerate(vectors):
            addmul_scalar_vector(acc, int(matrix[i, j]), vec)
        outputs.append(acc)
    return outputs


def invert(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix via Gauss–Jordan elimination.

    Raises :class:`SingularMatrixError` if no inverse exists.
    """
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise ValueError(f"matrix is not square: {matrix.shape}")
    work = matrix.astype(np.uint8).copy()
    inverse = identity(size)
    for col in range(size):
        pivot_row = None
        for row in range(col, size):
            if work[row, col] != 0:
                pivot_row = row
                break
        if pivot_row is None:
            raise SingularMatrixError(f"singular matrix (column {col})")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
        pivot_inv = gf_inv(int(work[col, col]))
        for j in range(size):
            work[col, j] = gf_mul(int(work[col, j]), pivot_inv)
            inverse[col, j] = gf_mul(int(inverse[col, j]), pivot_inv)
        for row in range(size):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            addmul_scalar_vector(work[row], factor, work[col].copy())
            addmul_scalar_vector(inverse[row], factor, inverse[col].copy())
    return inverse


def rank(matrix: np.ndarray) -> int:
    """Rank of a (possibly rectangular) matrix over GF(256)."""
    work = matrix.astype(np.uint8).copy()
    rows, cols = work.shape
    r = 0
    for col in range(cols):
        pivot_row = None
        for row in range(r, rows):
            if work[row, col] != 0:
                pivot_row = row
                break
        if pivot_row is None:
            continue
        if pivot_row != r:
            work[[r, pivot_row]] = work[[pivot_row, r]]
        pivot_inv = gf_inv(int(work[r, col]))
        for j in range(cols):
            work[r, j] = gf_mul(int(work[r, j]), pivot_inv)
        for row in range(rows):
            if row == r or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            addmul_scalar_vector(work[row], factor, work[r].copy())
        r += 1
        if r == rows:
            break
    return r


def solve(matrix: np.ndarray, rhs_blocks: Sequence[np.ndarray]) -> list:
    """Solve ``matrix @ x = rhs`` for block unknowns x.

    ``rhs_blocks[i]`` is the i-th right-hand-side block.  The matrix must be
    square and invertible; the return value mirrors :func:`mat_vec_apply`.
    """
    return mat_vec_apply(invert(matrix), list(rhs_blocks))


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """The rows x cols Vandermonde matrix V[i][j] = i**j over GF(256)."""
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = gf_pow(i, j) if i else (1 if j == 0 else 0)
    # Row 0 of i**j with i=0 is [1, 0, 0, ...]; fix by the convention 0**0=1.
    return out


def cauchy(m: int, k: int, x_values: Optional[Sequence[int]] = None,
           y_values: Optional[Sequence[int]] = None) -> np.ndarray:
    """An m x k Cauchy matrix C[i][j] = 1 / (x_i + y_j).

    Any sub-square of a Cauchy matrix is invertible, which is what makes
    Cauchy-based Reed–Solomon MDS for every erasure pattern.
    """
    if x_values is None:
        x_values = list(range(k, k + m))
    if y_values is None:
        y_values = list(range(k))
    if len(set(x_values) | set(y_values)) != m + k:
        raise ValueError("x and y values must be pairwise distinct")
    out = np.zeros((m, k), dtype=np.uint8)
    for i, x in enumerate(x_values):
        for j, y in enumerate(y_values):
            out[i, j] = gf_inv(x ^ y)
    return out


def systematic_vandermonde_generator(n: int, k: int) -> np.ndarray:
    """A systematic n x k MDS generator built from a Vandermonde matrix.

    Builds the n x k Vandermonde matrix on n distinct evaluation points and
    normalises its top k x k block to the identity (the classic Jerasure
    ``reed_sol_van`` construction).  Every k x k sub-matrix of the result is
    invertible because column operations preserve that property.
    """
    if not 0 < k <= n <= 256:
        raise ValueError(f"invalid RS dimensions n={n}, k={k}")
    vand = np.zeros((n, k), dtype=np.uint8)
    for i in range(n):
        for j in range(k):
            vand[i, j] = gf_pow(i + 1, j)
    # Column-reduce so the top k rows become the identity.
    for col in range(k):
        pivot = None
        for j in range(col, k):
            if vand[col, j] != 0:
                pivot = j
                break
        if pivot is None:
            raise SingularMatrixError("vandermonde normalisation failed")
        if pivot != col:
            vand[:, [col, pivot]] = vand[:, [pivot, col]]
        pivot_inv = gf_inv(int(vand[col, col]))
        for i in range(n):
            vand[i, col] = gf_mul(int(vand[i, col]), pivot_inv)
        for j in range(k):
            if j == col or vand[col, j] == 0:
                continue
            factor = int(vand[col, j])
            for i in range(n):
                vand[i, j] ^= gf_mul(factor, int(vand[i, col]))
    return vand
