"""Reed–Solomon erasure codes (the ``jerasure`` and ``isa`` plugins).

Systematic RS over GF(256) with two matrix constructions matching the
techniques the paper's Table 1 lists for Ceph's Jerasure plugin:

* ``reed_sol_van`` — Vandermonde-derived systematic generator;
* ``cauchy_orig`` — identity stacked on a Cauchy matrix.

Both are MDS: any k of the n chunks reconstruct the object.  The ``isa``
plugin is mathematically identical (Intel ISA-L implements the same codes
with SIMD kernels); it is registered separately so experiment profiles can
name either, and carries a lower CPU-cost factor used by the simulator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

import numpy as np

from .base import ErasureCode, InsufficientChunksError, register_plugin
from .matrix import (
    cauchy,
    identity,
    invert,
    mat_vec_apply,
    systematic_vandermonde_generator,
)

__all__ = ["ReedSolomon", "IsaReedSolomon", "RS_TECHNIQUES"]

RS_TECHNIQUES = ("reed_sol_van", "cauchy_orig", "reed_sol_r6_op")


@register_plugin("jerasure")
class ReedSolomon(ErasureCode):
    """Classic RS(n, k): k data chunks, m = n - k parity chunks."""

    #: Relative CPU cost of one byte of encode/decode work (simulator knob).
    cpu_cost_factor = 1.0

    def __init__(self, k: int, m: int, technique: str = "reed_sol_van"):
        super().__init__(k, m)
        if k + m > 256:
            raise ValueError(f"RS over GF(256) requires n <= 256, got {k + m}")
        if technique not in RS_TECHNIQUES:
            raise ValueError(
                f"unknown RS technique {technique!r}; expected one of {RS_TECHNIQUES}"
            )
        self.technique = technique
        self.generator = self._build_generator()

    def _build_generator(self) -> np.ndarray:
        if self.technique == "reed_sol_van":
            return systematic_vandermonde_generator(self.n, self.k)
        if self.technique == "reed_sol_r6_op":
            # Jerasure's optimised RAID-6: P = XOR of the data, Q = the
            # weighted sum sum_i 2^i * d_i.  Only defined for m = 2.
            if self.m != 2:
                raise ValueError("reed_sol_r6_op requires m = 2")
            p_row = np.ones(self.k, dtype=np.uint8)
            q_row = np.array(
                [_gf_pow2(i) for i in range(self.k)], dtype=np.uint8
            )
            return np.vstack([identity(self.k), p_row, q_row])
        top = identity(self.k)
        bottom = cauchy(self.m, self.k)
        return np.vstack([top, bottom])

    # -- data path -----------------------------------------------------------

    def encode(self, data: bytes) -> List[np.ndarray]:
        data_chunks = self._split_payload(data)
        parity_rows = self.generator[self.k :]
        parity_chunks = mat_vec_apply(parity_rows, data_chunks)
        return data_chunks + parity_chunks

    def decode_chunks(
        self, available: Mapping[int, np.ndarray], wanted: Iterable[int]
    ) -> Dict[int, np.ndarray]:
        wanted_list = sorted(set(wanted))
        self._validate_failure(wanted_list, available.keys())
        missing_data = [i for i in wanted_list if i < self.k]
        have_data = {i: np.asarray(available[i]) for i in available if i < self.k}

        recovered: Dict[int, np.ndarray] = {}
        if missing_data or any(i >= self.k for i in wanted_list):
            data_chunks = self._solve_data(available, have_data)
            for i in missing_data:
                recovered[i] = data_chunks[i]
            parity_wanted = [i for i in wanted_list if i >= self.k]
            if parity_wanted:
                rows = self.generator[parity_wanted]
                blocks = [data_chunks[i] for i in range(self.k)]
                for idx, block in zip(parity_wanted, mat_vec_apply(rows, blocks)):
                    recovered[idx] = block
        return {i: recovered[i] for i in wanted_list}

    def _solve_data(
        self, available: Mapping[int, np.ndarray], have_data: Dict[int, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        """Reconstruct all k data chunks from any k available chunks."""
        if len(have_data) == self.k:
            return {i: have_data[i] for i in range(self.k)}
        # Prefer data chunks (identity rows make the solve cheaper in real
        # implementations); take parity rows only as needed.
        chosen = sorted(have_data)
        for idx in sorted(available):
            if len(chosen) == self.k:
                break
            if idx not in have_data:
                chosen.append(idx)
        if len(chosen) < self.k:
            raise InsufficientChunksError(
                f"need {self.k} chunks to decode, have {len(chosen)}"
            )
        sub_generator = self.generator[chosen]
        inverse = invert(sub_generator)
        blocks = [np.asarray(available[i]) for i in chosen]
        solved = mat_vec_apply(inverse, blocks)
        return dict(enumerate(solved))


def _gf_pow2(exponent: int) -> int:
    """2**exponent over GF(256) (the RAID-6 Q-row coefficients)."""
    from .galois import gf_exp

    return gf_exp(exponent)


@register_plugin("isa")
class IsaReedSolomon(ReedSolomon):
    """ISA-L flavoured RS: same code, SIMD-accelerated in the real system."""

    cpu_cost_factor = 0.6

    def __init__(self, k: int, m: int, technique: str = "reed_sol_van"):
        super().__init__(k, m, technique=technique)
