"""Erasure-code plugin interface and registry.

Mirrors Ceph's EC plugin architecture (Table 1 of the paper): a pool's
profile names a plugin (``jerasure``, ``isa``, ``clay``, ``lrc``,
``shec``) plus per-plugin parameters, and the pool resolves it through the
registry here.  Every plugin implements the same byte-level contract:

* ``encode`` splits an object into k data chunks and computes m parity
  chunks (systematic codes only — all of Ceph's are);
* ``decode_chunks`` reconstructs the requested missing chunks from any
  sufficient subset;
* ``repair_plan`` describes the I/O a real repair would perform — which
  chunks are read, what fraction of each (sub-packetised codes read less
  than a full chunk), and how many disk operations the read decomposes
  into.  The cluster simulator charges exactly this plan, so repair-traffic
  differences between codes *emerge* from the code implementations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Type

import numpy as np

__all__ = [
    "ChunkUnavailableError",
    "InsufficientChunksError",
    "RepairRead",
    "RepairPlan",
    "ErasureCode",
    "register_plugin",
    "create_plugin",
    "available_plugins",
]


class ChunkUnavailableError(ValueError):
    """A requested chunk index does not exist for this code."""


class InsufficientChunksError(ValueError):
    """The surviving chunk set cannot reconstruct the requested data."""


@dataclass(frozen=True)
class RepairRead:
    """One helper read in a repair plan.

    ``fraction`` is the portion of the helper chunk that must be read
    (1.0 for Reed–Solomon; alpha-fractional for sub-packetised codes).
    ``io_ops`` is how many distinct disk operations the read decomposes
    into *per stripe-unit-sized extent*; sub-chunk reads are scattered, so
    Clay issues many small operations where RS issues one sequential one.
    """

    chunk_index: int
    fraction: float
    io_ops: int


@dataclass(frozen=True)
class RepairPlan:
    """The I/O recipe to rebuild ``lost`` from ``reads``.

    ``decode_work`` is a dimensionless CPU-cost multiplier relative to a
    plain RS decode of the same amount of data (1.0 = same cost).
    """

    lost: tuple
    reads: tuple
    decode_work: float = 1.0

    @property
    def helpers(self) -> int:
        return len(self.reads)

    def read_fraction_total(self) -> float:
        """Total data read, in units of one chunk."""
        return sum(read.fraction for read in self.reads)

    def repair_bandwidth_ratio(self, k: int) -> float:
        """Data read relative to the conventional k-chunk RS repair."""
        return self.read_fraction_total() / float(k)


class ErasureCode(ABC):
    """Base class for all erasure-code plugins.

    Chunks are indexed 0..n-1 with 0..k-1 the systematic data chunks and
    k..n-1 the parity chunks, matching Ceph's shard numbering.
    """

    #: Registry name, set by the :func:`register_plugin` decorator.
    plugin_name: str = ""

    def __init__(self, k: int, m: int):
        if k < 1 or m < 1:
            raise ValueError(f"k and m must be positive (k={k}, m={m})")
        self.k = k
        self.m = m

    @property
    def n(self) -> int:
        """Total chunk count per stripe."""
        return self.k + self.m

    @property
    def sub_chunk_count(self) -> int:
        """Sub-packetisation level alpha (1 for scalar codes like RS)."""
        return 1

    @property
    def storage_overhead(self) -> float:
        """Theoretical write amplification n/k (the paper's baseline)."""
        return self.n / self.k

    def fault_tolerance(self) -> int:
        """Guaranteed number of tolerated concurrent chunk failures."""
        return self.m

    def placement_affinity(self, spread: int) -> Optional[List[int]]:
        """Preferred region slot per chunk for a ``spread``-region stripe.

        Codes whose repair sets are sub-stripe-local (LRC local groups)
        return a slot index in ``[0, spread)`` per chunk so a stretch
        cluster can keep each repair set inside one region; ``None``
        (the default) means the placement rule's balanced contiguous
        blocks are as good as anything.  A returned assignment must use
        every slot and keep every slot at or under ``ceil(n / spread)``
        chunks — callers fall back to ``None`` semantics otherwise.
        """
        return None

    # -- data path ---------------------------------------------------------

    @abstractmethod
    def encode(self, data: bytes) -> List[np.ndarray]:
        """Split+encode ``data`` into n equal-size uint8 chunk arrays.

        Data is zero-padded so chunk sizes are equal; ``chunk_size`` for a
        payload is ``ceil(len(data) / k)`` rounded up to the code's minimum
        alignment (``sub_chunk_count``).
        """

    @abstractmethod
    def decode_chunks(
        self, available: Mapping[int, np.ndarray], wanted: Iterable[int]
    ) -> Dict[int, np.ndarray]:
        """Reconstruct the ``wanted`` chunk indices from ``available``."""

    def decode(self, available: Mapping[int, np.ndarray], data_size: int) -> bytes:
        """Reconstruct the original payload of ``data_size`` bytes."""
        wanted = [i for i in range(self.k) if i not in available]
        recovered = dict(available)
        if wanted:
            recovered.update(self.decode_chunks(available, wanted))
        parts = [np.asarray(recovered[i]).tobytes() for i in range(self.k)]
        return b"".join(parts)[:data_size]

    # -- repair description --------------------------------------------------

    def repair_plan(self, lost: Iterable[int], alive: Iterable[int]) -> RepairPlan:
        """Plan the reads needed to rebuild ``lost`` from ``alive``.

        The default is the conventional MDS repair: read any k surviving
        chunks in full.  Sub-packetised and locally-repairable codes
        override this.
        """
        lost_set = self._validate_failure(lost, alive)
        alive_list = sorted(set(alive))
        reads = tuple(
            RepairRead(chunk_index=i, fraction=1.0, io_ops=1)
            for i in alive_list[: self.k]
        )
        return RepairPlan(lost=tuple(sorted(lost_set)), reads=reads)

    def chunk_size(self, data_size: int) -> int:
        """Bytes per chunk for a payload, including alignment padding."""
        if data_size < 0:
            raise ValueError("data_size must be non-negative")
        base = -(-data_size // self.k) if data_size else 1
        align = self.sub_chunk_count
        return -(-base // align) * align

    # -- shared helpers ------------------------------------------------------

    def _validate_failure(self, lost: Iterable[int], alive: Iterable[int]) -> set:
        lost_set = set(lost)
        alive_set = set(alive)
        for idx in lost_set | alive_set:
            if not 0 <= idx < self.n:
                raise ChunkUnavailableError(f"chunk index {idx} out of range 0..{self.n - 1}")
        if lost_set & alive_set:
            raise ValueError(f"chunks both lost and alive: {sorted(lost_set & alive_set)}")
        if len(alive_set) < self.k:
            raise InsufficientChunksError(
                f"{len(alive_set)} survivors < k={self.k}; data is unrecoverable"
            )
        return lost_set

    def _split_payload(self, data: bytes) -> List[np.ndarray]:
        """Split ``data`` into k zero-padded equal chunks."""
        size = self.chunk_size(len(data))
        buffer = np.zeros(size * self.k, dtype=np.uint8)
        raw = np.frombuffer(data, dtype=np.uint8)
        buffer[: len(raw)] = raw
        return [buffer[i * size : (i + 1) * size].copy() for i in range(self.k)]


_REGISTRY: Dict[str, Type[ErasureCode]] = {}


def register_plugin(name: str) -> Callable[[Type[ErasureCode]], Type[ErasureCode]]:
    """Class decorator adding an :class:`ErasureCode` to the registry."""

    def wrap(cls: Type[ErasureCode]) -> Type[ErasureCode]:
        if name in _REGISTRY:
            raise ValueError(f"duplicate EC plugin name: {name!r}")
        cls.plugin_name = name
        _REGISTRY[name] = cls
        return cls

    return wrap


def create_plugin(name: str, **params) -> ErasureCode:
    """Instantiate a registered plugin by name with its parameters."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown EC plugin {name!r}; available: {known}") from None
    return cls(**params)


def available_plugins() -> List[str]:
    """Names of all registered plugins, sorted."""
    return sorted(_REGISTRY)
