"""Clay codes — coupled-layer MSR codes (the ``clay`` plugin).

Implements the construction of Vajha et al., "Clay Codes: Moulding MDS
Codes to Yield an MSR Code" (FAST '18), which Ceph ships as the ``clay``
erasure-code plugin the paper evaluates as Clay(12,9,11).

Geometry.  A Clay(n=k+m, k, d) code has repair degree ``q = d - k + 1``
and requires ``q | n``; with ``t = n / q`` each codeword is a 3-D array of
GF(256) symbols ``C(x, y, z)`` where the column ``(x, y)`` (with
``x in [0,q)``, ``y in [0,t)``) is one storage node and ``z`` ranges over
the ``alpha = q^t`` *planes* (the sub-packetisation level).  Node ``i``
maps to ``(x, y) = (i % q, i // q)``.

Coupling.  A vertex ``(x, y, z)`` with ``z_y == x`` is *unpaired*;
otherwise its companion is ``(z_y, y, z')`` with ``z' = z`` except
``z'_y = x``.  Coupled values C relate to uncoupled values U through the
symmetric invertible transform::

    C_v = U_v + gamma * U_comp        U_v = (C_v + gamma * C_comp) / (1 + gamma^2)

Within every plane the uncoupled symbols across the n nodes form a
codeword of a scalar [n, k] MDS code.  Decoding ``e <= m`` erased nodes
proceeds plane-by-plane in increasing *intersection score* order (the
layered decoder), and a single failed node is repaired reading only
``beta = alpha / q`` sub-chunks from each of the ``d = n - 1`` helpers —
the MSR repair-bandwidth optimum that motivates Clay over Reed–Solomon.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from .base import (
    ErasureCode,
    InsufficientChunksError,
    RepairPlan,
    RepairRead,
    register_plugin,
)
from .galois import gf_inv, gf_mul
from .matrix import (
    SingularMatrixError,
    identity,
    invert,
    mat_vec_apply,
    systematic_vandermonde_generator,
)

__all__ = ["ClayCode"]

Vertex = Tuple[int, int, Tuple[int, ...]]


@register_plugin("clay")
class ClayCode(ErasureCode):
    """Clay(k+m, k, d) vector MDS code with optimal single-node repair."""

    cpu_cost_factor = 1.5

    def __init__(self, k: int, m: int, d: int = 0, gamma: int = 2):
        super().__init__(k, m)
        n = k + m
        if d == 0:
            d = n - 1
        if not k <= d <= n - 1:
            raise ValueError(f"Clay requires k <= d <= n-1, got d={d} (k={k}, n={n})")
        self.d = d
        self.q = d - k + 1
        if n % self.q != 0:
            raise ValueError(
                f"Clay requires q=d-k+1 to divide n: q={self.q}, n={n}"
            )
        self.t = n // self.q
        self.alpha = self.q ** self.t
        self.beta = self.alpha // self.q
        # Plane-level scalar MDS code and its parity-check H = [P | I_m].
        self.generator = systematic_vandermonde_generator(n, k)
        parity_rows = self.generator[k:]
        self.parity_check = np.hstack([parity_rows, identity(m)])
        if d == n - 1:
            self.gamma = self._choose_gamma(gamma)
        else:
            # Optimal repair needs q == m; the layered decoder below works
            # for any coupling coefficient outside {0, 1}.
            if gamma in (0, 1):
                raise ValueError("gamma must not be 0 or 1")
            self.gamma = gamma
        self._inv_det = gf_inv(1 ^ gf_mul(self.gamma, self.gamma))
        if d == n - 1:
            self._repair_inverse = {
                node: invert(self._repair_system(node)) for node in range(n)
            }
        else:
            self._repair_inverse = {}

    # -- geometry ------------------------------------------------------------

    @property
    def sub_chunk_count(self) -> int:
        return self.alpha

    def node_coords(self, node: int) -> Tuple[int, int]:
        """Map node index to its (x, y) column coordinates."""
        if not 0 <= node < self.n:
            raise ValueError(f"node index {node} out of range")
        return node % self.q, node // self.q

    def coords_node(self, x: int, y: int) -> int:
        return y * self.q + x

    def planes(self) -> List[Tuple[int, ...]]:
        """All alpha plane vectors z in lexicographic order."""
        return [tuple(z) for z in itertools.product(range(self.q), repeat=self.t)]

    def plane_index(self, z: Sequence[int]) -> int:
        """Lexicographic rank of plane z (z[0] most significant)."""
        index = 0
        for digit in z:
            index = index * self.q + digit
        return index

    def is_unpaired(self, x: int, y: int, z: Sequence[int]) -> bool:
        return z[y] == x

    def companion(self, x: int, y: int, z: Tuple[int, ...]) -> Vertex:
        """The coupled partner vertex of (x, y, z); requires a paired vertex."""
        x2 = z[y]
        z2 = z[:y] + (x,) + z[y + 1 :]
        return x2, y, z2

    def intersection_score(self, z: Sequence[int], erased: Iterable[int]) -> int:
        """Number of erased columns (x*, y*) that are unpaired in plane z."""
        score = 0
        for node in erased:
            x, y = self.node_coords(node)
            if z[y] == x:
                score += 1
        return score

    def repair_plane_indices(self, lost_node: int) -> List[int]:
        """Sorted plane indices read from helpers to repair ``lost_node``."""
        x0, y0 = self.node_coords(lost_node)
        return sorted(
            self.plane_index(z) for z in self.planes() if z[y0] == x0
        )

    # -- coupling transforms ---------------------------------------------------

    def _uncouple(self, c_self: np.ndarray, c_comp: np.ndarray) -> np.ndarray:
        """U_v from the coupled pair (C_v, C_companion)."""
        gamma = self.gamma
        mixed = c_self ^ _scale(gamma, c_comp)
        return _scale(self._inv_det, mixed)

    def _couple_from_u_pair(self, u_self: np.ndarray, u_comp: np.ndarray) -> np.ndarray:
        """C_v when both uncoupled pair values are known."""
        return u_self ^ _scale(self.gamma, u_comp)

    def _couple_from_u_and_c(self, u_self: np.ndarray, c_comp: np.ndarray) -> np.ndarray:
        """C_v when U_v and the companion's coupled value are known."""
        det = 1 ^ gf_mul(self.gamma, self.gamma)
        return _scale(det, u_self) ^ _scale(self.gamma, c_comp)

    # -- encode / decode -------------------------------------------------------

    def encode(self, data: bytes) -> List[np.ndarray]:
        data_chunks = self._split_payload(data)
        lane = len(data_chunks[0]) // self.alpha
        available = {
            i: chunk.reshape(self.alpha, lane) for i, chunk in enumerate(data_chunks)
        }
        parities = self._layered_decode(available, list(range(self.k, self.n)), lane)
        chunks = list(data_chunks)
        for i in range(self.k, self.n):
            chunks.append(parities[i].reshape(-1))
        return chunks

    def decode_chunks(
        self, available: Mapping[int, np.ndarray], wanted: Iterable[int]
    ) -> Dict[int, np.ndarray]:
        wanted_list = sorted(set(wanted))
        self._validate_failure(wanted_list, available.keys())
        erased = sorted(set(range(self.n)) - set(available))
        if len(erased) > self.m:
            raise InsufficientChunksError(
                f"{len(erased)} erasures exceed fault tolerance m={self.m}"
            )
        first = np.asarray(next(iter(available.values())))
        if first.size % self.alpha != 0:
            raise ValueError(
                f"chunk size {first.size} is not a multiple of alpha={self.alpha}"
            )
        lane = first.size // self.alpha
        planes_by_node = {
            node: np.asarray(chunk).reshape(self.alpha, lane)
            for node, chunk in available.items()
        }
        solved = self._layered_decode(planes_by_node, erased, lane)
        return {i: solved[i].reshape(-1) for i in wanted_list}

    def _layered_decode(
        self,
        available: Mapping[int, np.ndarray],
        erased: Sequence[int],
        lane: int,
    ) -> Dict[int, np.ndarray]:
        """Recover coupled chunks at ``erased`` nodes, layer by layer.

        ``available`` maps node -> (alpha, lane) array of coupled values.
        Every node is either in ``available`` or ``erased``.
        """
        erased = sorted(erased)
        alive = sorted(available)
        chosen = alive[: self.k]
        solve_inverse = invert(self.generator[chosen])
        erased_rows = self.generator[erased]

        # C values: known planes for alive nodes, filled in for erased ones.
        coupled: Dict[int, np.ndarray] = {
            node: np.asarray(available[node]) for node in alive
        }
        for node in erased:
            coupled[node] = np.zeros((self.alpha, lane), dtype=np.uint8)
        recovered_planes = {node: set() for node in erased}

        groups: Dict[int, List[Tuple[int, ...]]] = {}
        for z in self.planes():
            groups.setdefault(self.intersection_score(z, erased), []).append(z)

        u_erased: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        for score in sorted(groups):
            group = groups[score]
            # Step 1: compute U at alive nodes and MDS-solve U at erased ones.
            for z in group:
                zi = self.plane_index(z)
                u_alive: Dict[int, np.ndarray] = {}
                for node in alive:
                    x, y = self.node_coords(node)
                    if self.is_unpaired(x, y, z):
                        u_alive[node] = coupled[node][zi]
                        continue
                    cx, cy, cz = self.companion(x, y, z)
                    comp_node = self.coords_node(cx, cy)
                    comp_zi = self.plane_index(cz)
                    if comp_node in available:
                        c_comp = coupled[comp_node][comp_zi]
                    else:
                        # Companion plane has score-1 less; already recovered.
                        if comp_zi not in recovered_planes[comp_node]:
                            raise AssertionError(
                                "layered decode ordering violated"
                            )
                        c_comp = coupled[comp_node][comp_zi]
                    u_alive[node] = self._uncouple(coupled[node][zi], c_comp)
                message = mat_vec_apply(solve_inverse, [u_alive[i] for i in chosen])
                solved = mat_vec_apply(erased_rows, message)
                for node, value in zip(erased, solved):
                    u_erased[(node, z)] = value
            # Step 2: turn U back into C at erased vertices of this group.
            for z in group:
                zi = self.plane_index(z)
                for node in erased:
                    x, y = self.node_coords(node)
                    if self.is_unpaired(x, y, z):
                        coupled[node][zi] = u_erased[(node, z)]
                    else:
                        cx, cy, cz = self.companion(x, y, z)
                        comp_node = self.coords_node(cx, cy)
                        comp_zi = self.plane_index(cz)
                        if comp_node in available:
                            coupled[node][zi] = self._couple_from_u_and_c(
                                u_erased[(node, z)], coupled[comp_node][comp_zi]
                            )
                        else:
                            coupled[node][zi] = self._couple_from_u_pair(
                                u_erased[(node, z)], u_erased[(comp_node, cz)]
                            )
                    recovered_planes[node].add(zi)
        return {node: coupled[node] for node in erased}

    # -- bandwidth-optimal single-node repair -----------------------------------

    def repair_chunk(
        self, lost_node: int, helper_reads: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Rebuild ``lost_node`` from beta sub-chunks per helper.

        ``helper_reads`` maps each of the d = n-1 surviving nodes to a
        ``(beta, lane)`` (or flat ``beta * lane``) array holding that
        node's sub-chunks for :meth:`repair_plane_indices`, in sorted
        plane order.  Returns the full repaired chunk, flattened.
        """
        if self.d != self.n - 1:
            raise NotImplementedError("optimal repair implemented for d = n-1")
        survivors = sorted(helper_reads)
        expected = [i for i in range(self.n) if i != lost_node]
        if survivors != expected:
            raise InsufficientChunksError(
                f"repair of node {lost_node} needs all {self.n - 1} helpers"
            )
        x0, y0 = self.node_coords(lost_node)
        repair_planes = [z for z in self.planes() if z[y0] == x0]
        plane_rank = {
            self.plane_index(z): pos
            for pos, z in enumerate(sorted(repair_planes, key=self.plane_index))
        }
        first = np.asarray(helper_reads[survivors[0]])
        lane = first.size // self.beta
        reads = {
            node: np.asarray(block).reshape(self.beta, lane)
            for node, block in helper_reads.items()
        }

        def helper_c(node: int, z: Tuple[int, ...]) -> np.ndarray:
            return reads[node][plane_rank[self.plane_index(z)]]

        inverse = self._repair_inverse[lost_node]
        others = [x for x in range(self.q) if x != x0]
        chunk = np.zeros((self.alpha, lane), dtype=np.uint8)
        h = self.parity_check
        for z in repair_planes:
            rhs_blocks = []
            for row in range(self.m):
                acc = np.zeros(lane, dtype=np.uint8)
                for node in survivors:
                    coeff = int(h[row, node])
                    if coeff == 0:
                        continue
                    x, y = self.node_coords(node)
                    if y == y0:
                        # U depends on an unknown companion at the failed
                        # node; only the known C part lands in the RHS.
                        known = _scale(self._inv_det, helper_c(node, z))
                        acc ^= _scale(coeff, known)
                        continue
                    if self.is_unpaired(x, y, z):
                        u_val = helper_c(node, z)
                    else:
                        cx, cy, cz = self.companion(x, y, z)
                        comp_node = self.coords_node(cx, cy)
                        u_val = self._uncouple(
                            helper_c(node, z), helper_c(comp_node, cz)
                        )
                    acc ^= _scale(coeff, u_val)
                rhs_blocks.append(acc)
            solution = mat_vec_apply(inverse, rhs_blocks)
            # Unknown 0 is U = C at the lost node in this (unpaired) plane.
            chunk[self.plane_index(z)] = solution[0]
            # Unknowns 1.. are the lost node's C values in companion planes.
            for pos, x in enumerate(others, start=1):
                cz = z[:y0] + (x,) + z[y0 + 1 :]
                chunk[self.plane_index(cz)] = solution[pos]
        return chunk.reshape(-1)

    def _repair_system(self, lost_node: int) -> np.ndarray:
        """The per-plane linear system solved during optimal repair.

        Unknowns: [U(lost, z)] + [C(lost, z(y0 -> x)) for each x != x0].
        Equations: the m parity checks of the plane code.  The system is
        identical for every repair plane of a given lost node.
        """
        x0, y0 = self.node_coords(lost_node)
        others = [x for x in range(self.q) if x != x0]
        if len(others) + 1 != self.m:
            raise SingularMatrixError(
                "repair system is square only when d = n-1 (q = m)"
            )
        system = np.zeros((self.m, self.m), dtype=np.uint8)
        for row in range(self.m):
            system[row, 0] = self.parity_check[row, lost_node]
            for pos, x in enumerate(others, start=1):
                node = self.coords_node(x, y0)
                coeff = gf_mul(
                    int(self.parity_check[row, node]),
                    gf_mul(self._inv_det, self.gamma),
                )
                system[row, pos] = coeff
        return system

    def _choose_gamma(self, preferred: int) -> int:
        """Pick a coupling coefficient making every repair system invertible."""
        candidates = [preferred] + [g for g in range(2, 256) if g != preferred]
        for gamma in candidates:
            if gamma in (0, 1):
                continue
            self.gamma = gamma
            self._inv_det = gf_inv(1 ^ gf_mul(gamma, gamma))
            try:
                for node in range(self.n):
                    invert(self._repair_system(node))
            except SingularMatrixError:
                continue
            return gamma
        raise SingularMatrixError("no usable coupling coefficient gamma found")

    # -- repair planning for the simulator ---------------------------------------

    def repair_plan(self, lost: Iterable[int], alive: Iterable[int]) -> RepairPlan:
        """Clay repair I/O: partial-plane reads scaled to the failure count.

        A single failure reads ``beta = alpha/q`` sub-chunks (``1/q`` of
        every helper chunk) from each of the d helpers.  For f <= m
        concurrent failures the decoder needs the *union* of the failed
        nodes' repair-plane sets from every survivor — a fraction that
        grows as ``1 - (1 - 1/q)^f``, which is why Clay's bandwidth
        advantage over Reed-Solomon shrinks as failures accumulate (§4.2
        of the paper; multiple-node repair in the Clay paper).  Reads are
        scattered over ``io_ops`` contiguous runs per helper chunk.
        """
        lost_set = self._validate_failure(lost, alive)
        alive_list = sorted(set(alive))
        if len(lost_set) == 1 and len(alive_list) >= self.d:
            (lost_node,) = lost_set
            runs = _contiguous_runs(self.repair_plane_indices(lost_node))
            reads = tuple(
                RepairRead(chunk_index=i, fraction=1.0 / self.q, io_ops=runs)
                for i in alive_list[: self.d]
            )
            return RepairPlan(lost=(lost_node,), reads=reads, decode_work=1.5)
        if len(alive_list) == self.n - len(lost_set):
            # Every survivor helps: partial-plane multi-node repair.
            plane_union = sorted(
                set().union(*(self.repair_plane_indices(node) for node in lost_set))
            )
            fraction = len(plane_union) / float(self.alpha)
            if fraction < 1.0:
                runs = _contiguous_runs(plane_union)
                reads = tuple(
                    RepairRead(chunk_index=i, fraction=fraction, io_ops=runs)
                    for i in alive_list
                )
                return RepairPlan(
                    lost=tuple(sorted(lost_set)), reads=reads, decode_work=2.0
                )
        # Degraded helper set (or the union covers everything): fall back
        # to a conventional k-chunk full decode.
        reads = tuple(
            RepairRead(chunk_index=i, fraction=1.0, io_ops=1)
            for i in alive_list[: self.k]
        )
        return RepairPlan(
            lost=tuple(sorted(lost_set)), reads=reads, decode_work=2.0
        )


def _scale(scalar: int, block: np.ndarray) -> np.ndarray:
    """scalar * block over GF(256) (returns a new array)."""
    from .galois import mul_scalar_vector

    return mul_scalar_vector(scalar, block)


def _contiguous_runs(sorted_indices: Sequence[int]) -> int:
    """Number of maximal runs of consecutive integers."""
    runs = 0
    previous = None
    for idx in sorted_indices:
        if previous is None or idx != previous + 1:
            runs += 1
        previous = idx
    return max(runs, 1)
