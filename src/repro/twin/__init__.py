"""Fast analytical twin of the discrete-event simulator.

The DES (:mod:`repro.core.experiment`) is the truth source, but it pays
per simulated object-run.  This package predicts the same headline
metrics — recovery time, repair bytes, the WA ledger total, degraded and
tenant-SLO read p99 — from closed forms and queueing bounds over the
identical inputs (:class:`~repro.core.profile.ExperimentProfile`,
workload, fault specs), in microseconds instead of seconds.

Fidelity contract: the twin is validated against the DES by the
differential harness in :mod:`repro.twin.validate`, which sweeps the
existing benchmark axes and asserts per-metric relative-error bounds
plus Spearman rank correlation (the twin must *order* configurations the
way the DES does).  The tuner uses it as a free low-fidelity rung
(``Fidelity(..., backend="twin")``) so successive halving spends DES
object-runs only on finalists.
"""

from .cell import twin_run_cell
from .model import (
    AnalyticalTwin,
    TwinCalibration,
    TwinPrediction,
    predict,
    predict_degraded_p99,
    predict_overwrite_amplification,
    predict_tenant_slo_p99,
)
from .validate import (
    DEFAULT_BOUNDS,
    SPEARMAN_THRESHOLD,
    CalibrationReport,
    CaseResult,
    DifferentialCase,
    MetricSummary,
    default_grid,
    render_report,
    run_differential,
    spearman,
)

__all__ = [
    "AnalyticalTwin",
    "TwinCalibration",
    "TwinPrediction",
    "predict",
    "predict_degraded_p99",
    "predict_overwrite_amplification",
    "predict_tenant_slo_p99",
    "twin_run_cell",
    "DEFAULT_BOUNDS",
    "SPEARMAN_THRESHOLD",
    "CalibrationReport",
    "CaseResult",
    "DifferentialCase",
    "MetricSummary",
    "default_grid",
    "render_report",
    "run_differential",
    "spearman",
]
