"""Drop-in analytical replacement for :func:`repro.core.sweep.run_cell`.

Same signature, same :class:`~repro.core.sweep.SweepResult` row shape, so
every consumer of the DES cell quantum — the sweep grid, the tuner's
evaluator, artifact serialisation — can be pointed at the twin without
knowing the difference.  The twin is deterministic, so ``runs`` and
``base_seed`` do not change the numbers; they are kept in the signature
(and ``runs`` echoed into the row) for interface fidelity.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.fault_injector import FaultSpec
from ..core.profile import ExperimentProfile
from ..core.sweep import SweepResult
from ..workload.generator import Workload
from .model import AnalyticalTwin, TwinCalibration

__all__ = ["twin_run_cell"]


def twin_run_cell(
    profile: ExperimentProfile,
    workload: Workload,
    faults: List[FaultSpec],
    runs: int,
    base_seed: int,
    calibration: Optional[TwinCalibration] = None,
) -> SweepResult:
    """Evaluate one grid cell analytically; returns a DES-shaped row."""
    twin = AnalyticalTwin(calibration)
    prediction = twin.predict(profile, workload, faults)
    return SweepResult(
        label=prediction.label,
        settings=prediction.settings,
        recovery_time=prediction.recovery_time,
        checking_fraction=prediction.checking_fraction,
        wa_actual=prediction.wa_actual,
        runs=runs,
    )
