"""Differential validation: the twin against the DES, case by case.

The twin is only useful if its error is *known*.  This module runs the
same configuration through both evaluators — :func:`repro.core.sweep.run_cell`
(the truth source) and :func:`repro.twin.cell.twin_run_cell` — over a grid
that spans the benchmark axes (fig2a cache schemes, fig2b pg counts,
fig2c stripe units, fig2d failure modes, table3 WA geometry, the gray
axis, HDD device class), then summarises two things per metric:

* **relative error** (median and max) — is each prediction close?
* **Spearman rank correlation** — does the twin *order* configurations
  the way the DES does?  This is the property the tuner actually relies
  on: a low-fidelity rung only has to rank candidates, not price them.

Bounds live in :data:`DEFAULT_BOUNDS`; the calibration report rendered
by :func:`render_report` is checked in under ``benchmarks/results/`` so
the documented error envelope travels with the code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.stats import spearman
from ..cluster.bluestore import CACHE_SCHEMES
from ..core.fault_injector import FaultSpec
from ..core.profile import ExperimentProfile
from ..core.sweep import run_cell
from ..workload.generator import Workload
from .cell import twin_run_cell
from .model import TwinCalibration

__all__ = [
    "DEFAULT_BOUNDS",
    "SPEARMAN_THRESHOLD",
    "DifferentialCase",
    "CaseResult",
    "MetricSummary",
    "CalibrationReport",
    "spearman",
    "default_grid",
    "run_differential",
    "render_report",
]

MB = 1024 * 1024
KB = 1024

#: Documented per-metric relative-error bounds (max over the grid).  WA
#: is closed-form-exact; total recovery time is dominated by the exact
#: checking-period arithmetic; the EC recovery period alone is a
#: queueing approximation and carries the widest envelope.
DEFAULT_BOUNDS: Dict[str, float] = {
    "wa_actual": 0.01,
    "recovery_time": 0.05,
    "ec_recovery_period": 0.30,
}

#: Minimum acceptable rank agreement on recovery time (the tuner's
#: ordering requirement, per the acceptance criteria).
SPEARMAN_THRESHOLD = 0.9


@dataclass(frozen=True)
class DifferentialCase:
    """One grid point: a profile + workload + fault load, run both ways."""

    name: str
    profile: ExperimentProfile
    workload: Workload
    faults: Tuple[FaultSpec, ...] = (FaultSpec(level="node", count=1),)
    seed: int = 3


@dataclass(frozen=True)
class CaseResult:
    """Both evaluations of one case plus per-metric relative errors."""

    name: str
    des: Dict[str, float]
    twin: Dict[str, float]

    def rel_error(self, metric: str) -> float:
        """|twin - des| / |des|; exact-zero agreement reads as 0.0."""
        truth = self.des[metric]
        predicted = self.twin[metric]
        if truth == 0.0:
            return 0.0 if predicted == 0.0 else math.inf
        return abs(predicted - truth) / abs(truth)


@dataclass(frozen=True)
class MetricSummary:
    """Error envelope of one metric over the whole grid."""

    metric: str
    bound: float
    median_rel_error: float
    max_rel_error: float
    rank_spearman: float
    cases: int

    @property
    def within_bound(self) -> bool:
        return self.max_rel_error <= self.bound


@dataclass(frozen=True)
class CalibrationReport:
    """The differential sweep's full outcome, ready to render and assert."""

    results: Tuple[CaseResult, ...]
    summaries: Dict[str, MetricSummary]
    spearman_threshold: float = SPEARMAN_THRESHOLD

    @property
    def passed(self) -> bool:
        if not self.summaries:
            return False
        if any(not s.within_bound for s in self.summaries.values()):
            return False
        recovery = self.summaries.get("recovery_time")
        if recovery is not None and recovery.cases >= 3:
            return recovery.rank_spearman >= self.spearman_threshold
        return True


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def default_grid(
    num_objects: int = 192, object_size: int = 8 * MB
) -> List[DifferentialCase]:
    """The differential grid: one case per benchmark axis worth ranking.

    Sized by ``num_objects`` so the tier-1 test can run a small, fast
    instance of the *same* grid the benchmark sweep runs larger.
    """
    workload = Workload(num_objects=num_objects, object_size=object_size)
    node = (FaultSpec(level="node", count=1),)

    def rs(name: str, **overrides) -> ExperimentProfile:
        settings = dict(
            name=name, ec_plugin="jerasure", ec_params={"k": 9, "m": 3}
        )
        settings.update(overrides)
        return ExperimentProfile(**settings)

    cases = [
        DifferentialCase("rs-baseline", rs("rs-baseline"), workload, node),
        # fig2a: cache schemes move metadata hit rates, hence read costs.
        DifferentialCase(
            "rs-kv-cache", rs("rs-kv-cache", cache_scheme="kv-optimized"),
            workload, node,
        ),
        DifferentialCase(
            "rs-data-cache", rs("rs-data-cache", cache_scheme="data-optimized"),
            workload, node,
        ),
        # fig2b: placement-group count changes recovery parallelism.
        DifferentialCase(
            "rs-pg16", rs("rs-pg16", pg_num=16), workload, node
        ),
        DifferentialCase(
            "rs-pg64", rs("rs-pg64", pg_num=64), workload, node
        ),
        # fig2c: stripe unit moves the IOPS/bandwidth balance.
        DifferentialCase(
            "rs-su-256k", rs("rs-su-256k", stripe_unit=256 * KB),
            workload, node,
        ),
        DifferentialCase(
            "rs-su-1m", rs("rs-su-1m", stripe_unit=1 * MB), workload, node
        ),
        # table3 / code geometry: sub-packetised and locality codes.
        DifferentialCase(
            "clay-baseline",
            rs("clay-baseline", ec_plugin="clay",
               ec_params={"k": 9, "m": 3, "d": 11}),
            workload, node,
        ),
        DifferentialCase(
            "lrc-8-2-2",
            rs("lrc-8-2-2", ec_plugin="lrc",
               ec_params={"k": 8, "l": 2, "r": 2}),
            workload, node,
        ),
        # fig2d: failure modes (device-level, multi-device).
        DifferentialCase(
            "rs-device-fault", rs("rs-device-fault"), workload,
            (FaultSpec(level="device", count=1),),
        ),
        DifferentialCase(
            "rs-two-devices", rs("rs-two-devices"), workload,
            (FaultSpec(level="device", count=2),),
        ),
        # device class: HDD flips the cluster into the IOPS-bound regime.
        DifferentialCase(
            "rs-hdd", rs("rs-hdd", device_class="hdd"), workload, node
        ),
        # gray axis: no osdmap change — both evaluators must report a
        # zero-length recovery cycle.
        DifferentialCase(
            "rs-gray-slow-disk", rs("rs-gray-slow-disk"), workload,
            (FaultSpec(level="slow_device", count=2, factor=4.0),),
        ),
    ]
    assert all(case.profile.cache_scheme in CACHE_SCHEMES for case in cases)
    return cases


def run_differential(
    cases: Optional[Sequence[DifferentialCase]] = None,
    calibration: Optional[TwinCalibration] = None,
    bounds: Optional[Dict[str, float]] = None,
    runs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> CalibrationReport:
    """Run every case through DES and twin; summarise the error envelope."""
    cases = list(cases) if cases is not None else default_grid()
    bounds = dict(bounds) if bounds is not None else dict(DEFAULT_BOUNDS)
    results: List[CaseResult] = []
    for case in cases:
        if progress:
            progress(case.name)
        des_row = run_cell(
            case.profile, case.workload, list(case.faults), runs, case.seed
        )
        twin_row = twin_run_cell(
            case.profile, case.workload, list(case.faults), runs, case.seed,
            calibration=calibration,
        )
        results.append(
            CaseResult(
                name=case.name,
                des={
                    "recovery_time": des_row.recovery_time,
                    "wa_actual": des_row.wa_actual,
                    "checking_fraction": des_row.checking_fraction,
                    "ec_recovery_period": des_row.recovery_time
                    * (1.0 - des_row.checking_fraction),
                },
                twin={
                    "recovery_time": twin_row.recovery_time,
                    "wa_actual": twin_row.wa_actual,
                    "checking_fraction": twin_row.checking_fraction,
                    "ec_recovery_period": twin_row.recovery_time
                    * (1.0 - twin_row.checking_fraction),
                },
            )
        )
    summaries: Dict[str, MetricSummary] = {}
    for metric, bound in bounds.items():
        errors = [r.rel_error(metric) for r in results]
        # Rank agreement only means something across cases the DES
        # actually distinguishes (drop the zero-recovery gray cases).
        ranked = [r for r in results if r.des[metric] > 0.0]
        rho = spearman(
            [r.des[metric] for r in ranked],
            [r.twin[metric] for r in ranked],
        ) if len(ranked) >= 3 else 1.0
        summaries[metric] = MetricSummary(
            metric=metric,
            bound=bound,
            median_rel_error=_median(errors),
            max_rel_error=max(errors) if errors else 0.0,
            rank_spearman=rho,
            cases=len(ranked),
        )
    return CalibrationReport(results=tuple(results), summaries=summaries)


def render_report(report: CalibrationReport) -> str:
    """Plain-text calibration report (checked in under benchmarks/results)."""
    lines = ["Twin calibration: analytical model vs DES", ""]
    header = (
        f"{'case':<20} {'DES rec(s)':>11} {'twin rec(s)':>11} {'err':>7}"
        f" {'DES WA':>8} {'twin WA':>8} {'err':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in report.results:
        rec_err = row.rel_error("recovery_time")
        wa_err = row.rel_error("wa_actual")
        lines.append(
            f"{row.name:<20} {row.des['recovery_time']:>11.1f}"
            f" {row.twin['recovery_time']:>11.1f}"
            f" {rec_err:>6.1%}"
            f" {row.des['wa_actual']:>8.3f} {row.twin['wa_actual']:>8.3f}"
            f" {wa_err:>6.1%}"
        )
    lines.append("")
    for metric, summary in sorted(report.summaries.items()):
        verdict = "ok" if summary.within_bound else "EXCEEDED"
        lines.append(
            f"{metric}: median err {summary.median_rel_error:.1%}, "
            f"max err {summary.max_rel_error:.1%} "
            f"(bound {summary.bound:.0%}: {verdict}), "
            f"rank spearman {summary.rank_spearman:.3f} "
            f"over {summary.cases} cases"
        )
    lines.append(
        f"overall: {'PASS' if report.passed else 'FAIL'} "
        f"(spearman threshold {report.spearman_threshold})"
    )
    return "\n".join(lines)
