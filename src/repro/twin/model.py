"""Closed-form predictors for the DES's headline metrics.

The model walks the same causal chain the simulator executes, but in
expectation instead of event by event:

* **WA ledger** — exact.  Ingest stores ``n`` chunks per object through
  :meth:`BlueStore.chunk_allocation`; the twin evaluates the identical
  allocation+metadata arithmetic, so the predicted Actual WA Factor
  matches the measured one to the byte on a healthy ingest.
* **Repair bytes** — near-exact.  The expected lost-shard count per
  stripe follows a hypergeometric draw over failure domains; each loss
  pattern expands through the real :meth:`ErasureCode.repair_plan` and
  the real sub-chunk degeneration rule
  (:func:`repro.cluster.osd.resolve_subchunk_read`), so RS/Clay/LRC read
  amplification and the §4.2 min-IO collapse are reproduced, not
  re-modelled.
* **Recovery time** — queueing bounds.  The checking period is the
  down/out interval plus monitor-tick quantisation plus peering; the EC
  recovery period is the max of four capacity bounds (per-survivor
  recovery-read grants, per-target write grants after deferred-write
  coalescing, primary decode CPU, NIC) and a reservation-limited PG
  makespan, plus one object pipeline latency.  Cache-scheme sensitivity
  enters through the real BlueStore hit-rate model evaluated on the
  post-ingest working sets.
* **Degraded / tenant p99** — service-time sums over the client read
  path (disk, fan-in NIC serialisation, on-the-fly decode) with a light
  utilisation inflation; the tenant form adds the mClock share floor
  (``max(reservation, weight share)``) against a saturating batch
  competitor.

Every knob that is a guess rather than arithmetic lives in
:class:`TwinCalibration`; the differential harness
(:mod:`repro.twin.validate`) measures how far the guesses drift from the
DES and pins the error bounds.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cluster.bluestore import BlueStore
from ..cluster.network import M5_NIC, NicSpec
from ..cluster.objectstore import layout_object
from ..cluster.osd import CephConfig, resolve_subchunk_read, sequential_ops
from ..cluster.topology import FailureDomain
from ..core.fault_injector import FaultSpec
from ..core.profile import ExperimentProfile
from ..workload.generator import Workload

__all__ = [
    "TwinCalibration",
    "TwinPrediction",
    "AnalyticalTwin",
    "predict",
    "predict_degraded_p99",
    "predict_tenant_slo_p99",
    "predict_overwrite_amplification",
]

#: Fault levels that change the osdmap and trigger backfill.  Gray levels
#: (slow_device, net_degrade, flap) and corruption degrade service but do
#: not mark OSDs out, so — like the DES, whose timeline stays ``None`` —
#: the twin predicts no recovery cycle for them.  ``correlated_crash``
#: fails whole failure-domain buckets at once and rides the same
#: machinery via bucket/host-equivalent conversion.
_CRASH_LEVELS = ("node", "device", "correlated_crash")


@dataclass(frozen=True)
class TwinCalibration:
    """The model's non-arithmetic constants, all in one auditable place.

    Values are fitted once against the seeded differential grid
    (``benchmarks/results/twin_calibration.txt``); they scale capacity
    bounds, they never change what is computed.
    """

    #: Monitor-tick quantisation between down+interval and the osdmap
    #: change (the DES's detection is itself tick-aligned, so the +600 s
    #: lands exactly on a tick: zero residual).
    out_quantisation: float = 0.0
    #: Utilisation ceiling of the per-survivor recovery-read grant pool
    #: (helper selection is not perfectly balanced).
    read_efficiency: float = 0.82
    #: Utilisation ceiling of the replacement-target write pool.
    write_efficiency: float = 0.85
    #: Decode CPU workers usable per active primary (the OSD pool has 2,
    #: shared with sub-chunk range extraction).
    cpu_per_primary: float = 2.0
    #: Backfill-reservation convoy law.  Each PG holds its reservation
    #: set (primary + targets, ``osd_max_backfills=1`` each) for its
    #: whole recovery; acquisition in sorted OSD-id order couples chains
    #: of waiting PGs, and the measured makespan of N spread-target PGs
    #: grows as ``per_pg_service * N**chain_exponent`` (fitted 0.62-0.65
    #: across pg_num 16/64/256 on the seed DES).
    chain_exponent: float = 0.64
    #: Extra serialisation per additional concentrated chain: two failed
    #: devices build two sibling-target chains that couple through
    #: shared primaries and doubly-affected PGs (measured ~1.4x for 2).
    chain_coupling: float = 0.4
    #: Helper-grant queueing burstiness.  Concurrent PGs issue their
    #: pulls in per-object bursts, so once in-flight reads exceed the
    #: helper-server pool an op's read phase pays ~this many grant
    #: services per unit of excess depth (fitted jointly with
    #: ``straggler`` across the 8 MB and 64 MB object grids).
    grant_contention: float = 2.0
    #: Straggler tail of the spread regime.  The makespan tracks the
    #: *slowest* affected PG, not the mean one: object counts are
    #: multinomial across PGs and helper-set collisions are uneven, so
    #: the slowest-PG excess over the mean shrinks roughly as 1/sqrt(N)
    #: of the affected-PG count (max-of-N concentration).
    straggler: float = 0.5
    #: Tail inflation from deterministic-service queueing in the probe
    #: load (p99 over near-constant samples sits just above the mean).
    p99_inflation: float = 1.08
    #: How strongly the saturating batch tenant inflates the latency
    #: tenant's queue beyond its mClock share floor.
    tenant_contention: float = 1.0

    def __post_init__(self):
        if not 0.0 < self.read_efficiency <= 1.0:
            raise ValueError("read_efficiency must be in (0, 1]")
        if not 0.0 < self.write_efficiency <= 1.0:
            raise ValueError("write_efficiency must be in (0, 1]")
        if self.cpu_per_primary <= 0 or not 0.0 < self.chain_exponent <= 1.0:
            raise ValueError("invalid concurrency calibration")
        if self.chain_coupling < 0.0:
            raise ValueError("chain_coupling must be non-negative")
        if self.p99_inflation < 1.0 or self.tenant_contention < 0.0:
            raise ValueError("invalid tail calibration")
        if self.grant_contention < 0.0:
            raise ValueError("grant_contention must be non-negative")
        if self.straggler < 0.0:
            raise ValueError("straggler must be non-negative")


@dataclass(frozen=True)
class TwinPrediction:
    """One analytical evaluation of a profile under a fault load.

    Mirrors the DES observables: ``recovery_time`` is detection to EC
    recovery finished, ``wa_actual`` the Actual WA Factor, the repair
    byte counters match ``RecoveryStats.bytes_read/bytes_written``
    semantics (wanted bytes over the wire, stored bytes on targets).
    """

    label: str
    settings: Dict[str, Any]
    recovery_time: float
    checking_period: float
    ec_recovery_period: float
    wa_actual: float
    used_bytes: int
    workload_bytes: int
    repair_bytes_read: float
    repair_bytes_written: float
    affected_objects: float
    lost_chunks: float
    degraded_p99: Optional[float] = None
    tenant_slo_p99: Optional[float] = None
    #: Expected repair bytes pulled across regions (stretch clusters
    #: only; None on single-region profiles so their digests are stable).
    wan_cross_read_bytes: Optional[float] = None
    #: Expected aggregate PG-time at minimum redundancy (correlated
    #: fault loads only; None otherwise so existing digests are stable).
    time_at_risk: Optional[float] = None

    @property
    def checking_fraction(self) -> float:
        if self.recovery_time <= 0:
            return 0.0
        return self.checking_period / self.recovery_time

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping of every predicted metric."""
        data: Dict[str, Any] = {
            "label": self.label,
            "settings": self.settings,
            "recovery_time": self.recovery_time,
            "checking_period": self.checking_period,
            "ec_recovery_period": self.ec_recovery_period,
            "checking_fraction": self.checking_fraction,
            "wa_actual": self.wa_actual,
            "used_bytes": self.used_bytes,
            "workload_bytes": self.workload_bytes,
            "repair_bytes_read": self.repair_bytes_read,
            "repair_bytes_written": self.repair_bytes_written,
            "affected_objects": self.affected_objects,
            "lost_chunks": self.lost_chunks,
        }
        # Pruned at None (the gray-digest convention) so predictions
        # without probe metrics stay byte-stable as fields accrete.
        if self.degraded_p99 is not None:
            data["degraded_p99"] = self.degraded_p99
        if self.tenant_slo_p99 is not None:
            data["tenant_slo_p99"] = self.tenant_slo_p99
        if self.wan_cross_read_bytes is not None:
            data["wan_cross_read_bytes"] = self.wan_cross_read_bytes
        if self.time_at_risk is not None:
            data["time_at_risk"] = self.time_at_risk
        return data

    def digest_json(self) -> str:
        """Canonical JSON for the determinism digest (sorted, compact)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON: byte-stable across re-runs."""
        return hashlib.sha256(self.digest_json().encode()).hexdigest()


def _comb(n: int, r: int) -> int:
    if r < 0 or r > n:
        return 0
    return math.comb(n, r)


def _correlated_host_equivalents(
    profile: ExperimentProfile, spec: FaultSpec
) -> int:
    """How many whole hosts one correlated_crash unit takes down."""
    if spec.domain == FailureDomain.RACK:
        per_bucket = -(-profile.num_hosts // max(1, profile.num_racks))
    elif spec.domain == FailureDomain.REGION:
        per_bucket = -(-profile.num_hosts // max(1, profile.num_regions))
    else:
        per_bucket = 1
    return per_bucket * spec.count


def _loss_distribution(
    profile: ExperimentProfile, faults: Sequence[FaultSpec]
) -> List[Tuple[int, float]]:
    """(lost shards per stripe, probability) over the fault load.

    Node faults remove whole hosts: with the host failure domain a
    stripe's ``n`` shards sit on ``n`` distinct hosts, so the lost count
    is hypergeometric over hosts.  Device faults remove single OSDs;
    each shard's OSD is marginally uniform, binomial is exact enough at
    the counts the injector admits.  Correlated crashes mark whole
    buckets: on a rack-domain pool a whole-rack unit is one marked
    bucket in the same hypergeometric, just drawn over racks; anywhere
    else the unit dissolves into its host-equivalents.
    """
    code_n = _code_for(profile).n
    hosts = profile.num_hosts
    osds = hosts * profile.osds_per_host
    failed_hosts = sum(
        spec.count for spec in faults if spec.level == "node"
    )
    failed_osds = sum(
        spec.count for spec in faults if spec.level == "device"
    )
    rack_pool = profile.failure_domain == FailureDomain.RACK
    failed_racks = 0
    for spec in faults:
        if spec.level != "correlated_crash":
            continue
        if rack_pool and spec.domain == FailureDomain.RACK:
            failed_racks += spec.count
        else:
            failed_hosts += _correlated_host_equivalents(profile, spec)
    if failed_hosts == 0 and failed_osds == 0 and failed_racks == 0:
        return [(0, 1.0)]
    if profile.failure_domain == FailureDomain.OSD:
        # OSD domain: shards land on distinct OSDs, hosts unconstrained.
        marked = failed_hosts * profile.osds_per_host + failed_osds
        total = osds
        draws = code_n
        return [
            (j, _comb(marked, j) * _comb(total - marked, draws - j) / _comb(total, draws))
            for j in range(0, min(draws, marked) + 1)
        ]
    dist: Dict[int, float] = {0: 1.0}
    if failed_hosts:
        host_dist = [
            (j, _comb(failed_hosts, j) * _comb(hosts - failed_hosts, code_n - j)
             / _comb(hosts, code_n))
            for j in range(0, min(code_n, failed_hosts) + 1)
        ]
        dist = {j: p for j, p in host_dist if p > 0}
    if failed_racks:
        # Rack-domain pools place at most one shard per rack, so whole-
        # rack correlated units are hypergeometric over racks; folded
        # with whatever the (conservatively independent) host faults
        # already cost, capped at the stripe width.
        racks = max(1, profile.num_racks)
        rack_dist = [
            (j, _comb(failed_racks, j)
             * _comb(racks - failed_racks, code_n - j)
             / _comb(racks, code_n))
            for j in range(0, min(code_n, failed_racks) + 1)
        ]
        folded_racks: Dict[int, float] = {}
        for base_j, base_p in dist.items():
            for j, p in rack_dist:
                if p > 0:
                    key = min(code_n, base_j + j)
                    folded_racks[key] = folded_racks.get(key, 0.0) + base_p * p
        dist = folded_racks
    if failed_osds:
        # Device removals: per-shard marginal loss probability, folded
        # into whatever the node faults already cost.
        p_shard = failed_osds / osds
        folded: Dict[int, float] = {}
        for base_j, base_p in dist.items():
            remaining = code_n - base_j
            for extra in range(0, remaining + 1):
                p = (
                    base_p
                    * _comb(remaining, extra)
                    * (p_shard**extra)
                    * ((1 - p_shard) ** (remaining - extra))
                )
                if p > 0:
                    folded[base_j + extra] = folded.get(base_j + extra, 0.0) + p
        dist = folded
    return sorted(dist.items())


def _code_for(profile: ExperimentProfile):
    return profile.create_code()


def _ghost_backend(
    profile: ExperimentProfile, workload: Workload
) -> BlueStore:
    """A BlueStore instance carrying the expected post-ingest state.

    The cache hit-rate and write-coalescing models are queried against
    this ghost, so Figure 2a's cache-scheme sensitivity flows from the
    *real* BlueStore arithmetic rather than a re-derivation.
    """
    code = _code_for(profile)
    layout = layout_object(
        workload.object_size, code.n, code.k, profile.stripe_unit
    )
    osds = profile.num_hosts * profile.osds_per_host
    chunks_per_osd = workload.num_objects * code.n / osds
    backend = BlueStore(
        profile.cache_config(), cache_bytes=profile.ceph.osd_cache_bytes
    )
    backend.num_chunks = chunks_per_osd
    backend.num_extents = chunks_per_osd * layout.units
    backend.data_bytes = chunks_per_osd * layout.chunk_stored_bytes
    return backend


def _decode_time(
    config: CephConfig,
    output_bytes: float,
    decode_work: float,
    fragments: float,
    cpu_cost_factor: float,
) -> float:
    """Mirror of :meth:`OsdDaemon.decode_time` as a pure function."""
    byte_time = output_bytes * decode_work * cpu_cost_factor / config.decode_bandwidth
    return byte_time + fragments * config.decode_fragment_overhead


def _transfer_time(nic: NicSpec, nbytes: float) -> float:
    """One fabric hop: egress + ingress serialisation plus latency."""
    per_side = nbytes / nic.bandwidth + nic.message_overhead
    return 2 * per_side + nic.latency


@dataclass
class _RepairCosts:
    """Expected per-affected-object repair costs (service seconds/bytes)."""

    net_read_bytes: float = 0.0
    disk_read_bytes: float = 0.0
    read_grant_service: float = 0.0
    max_read_leg: float = 0.0
    reads_count: float = 0.0
    decode_service: float = 0.0
    extract_service: float = 0.0
    lost_shards: float = 0.0


class AnalyticalTwin:
    """Closed-form evaluator sharing the DES's configuration inputs."""

    def __init__(self, calibration: Optional[TwinCalibration] = None):
        self.calibration = calibration or TwinCalibration()

    # -- WA (exact) -------------------------------------------------------------

    def predict_used_bytes(
        self, profile: ExperimentProfile, workload: Workload
    ) -> int:
        """Total OSD usage after ingest: the Table-3 measurement point."""
        code = _code_for(profile)
        layout = layout_object(
            workload.object_size, code.n, code.k, profile.stripe_unit
        )
        backend = BlueStore(profile.cache_config())
        csum_blocks = 0
        if profile.scrub_interval > 0 or profile.integrity_data_plane:
            csum_blocks = max(
                1, -(-layout.chunk_stored_bytes // profile.csum_block_size)
            )
        allocated, metadata = backend.chunk_allocation(
            layout.chunk_stored_bytes, layout.units, csum_blocks
        )
        return workload.num_objects * code.n * (allocated + metadata)

    # -- repair plan expansion ---------------------------------------------------

    def _plan_costs(
        self,
        profile: ExperimentProfile,
        workload: Workload,
        loss_dist: Sequence[Tuple[int, float]],
        backend: BlueStore,
    ) -> _RepairCosts:
        code = _code_for(profile)
        config = profile.ceph
        layout = layout_object(
            workload.object_size, code.n, code.k, profile.stripe_unit
        )
        chunk = layout.chunk_stored_bytes
        disk = profile.disk_spec()
        nic = M5_NIC
        cpu_cost = getattr(code, "cpu_cost_factor", 1.0)
        costs = _RepairCosts()
        p_affected = sum(p for j, p in loss_dist if j >= 1)
        if p_affected <= 0:
            return costs
        for j, p in loss_dist:
            if j < 1:
                continue
            weight = p / p_affected
            plans = self._plans_for(code, j)
            if not plans:
                continue
            pshare = weight / len(plans)
            for plan in plans:
                legs: List[float] = []
                for read in plan.reads:
                    if read.fraction >= 1.0:
                        net_bytes = float(chunk)
                        disk_bytes = float(chunk)
                        disk_ops = sequential_ops(config, chunk)
                        scatter = 0
                    else:
                        prof = resolve_subchunk_read(
                            config,
                            layout.units,
                            layout.stripe_unit,
                            read.fraction,
                            read.io_ops,
                        )
                        net_bytes = float(int(chunk * read.fraction))
                        disk_bytes = float(prof.disk_bytes)
                        disk_ops = prof.disk_ops
                        scatter = prof.scatter_runs
                        costs.extract_service += pshare * (
                            layout.units
                            * read.io_ops
                            * config.subchunk_range_overhead
                        )
                    meta_ops = backend.read_overhead_ops(disk_bytes, scatter)
                    grant = (
                        disk_bytes / config.recovery_read_rate
                        + meta_ops * config.metadata_op_cost
                        + scatter * config.recovery_range_cost
                    )
                    disk_svc = disk.latency + max(
                        disk_bytes / disk.read_bandwidth,
                        max(1, round(disk_ops + meta_ops)) / disk.read_iops,
                    )
                    costs.net_read_bytes += pshare * net_bytes
                    costs.disk_read_bytes += pshare * disk_bytes
                    costs.read_grant_service += pshare * grant
                    legs.append(grant + disk_svc + _transfer_time(nic, net_bytes))
                costs.max_read_leg += pshare * (max(legs) if legs else 0.0)
                costs.reads_count += pshare * len(plan.reads)
                fragments = layout.units * code.sub_chunk_count * j
                costs.decode_service += pshare * _decode_time(
                    config, chunk * j, plan.decode_work, fragments, cpu_cost
                )
            costs.lost_shards += weight * j
        return costs

    @staticmethod
    def _plans_for(code, j: int):
        """Repair plans for ``j`` losses: all single-loss positions for
        j=1 (LRC/SHEC locality depends on *which* shard died), one
        representative pattern beyond that."""
        shards = list(range(code.n))
        plans = []
        if j == 1:
            for lost in shards:
                alive = [s for s in shards if s != lost]
                try:
                    plans.append(code.repair_plan([lost], alive))
                except ValueError:
                    continue
        else:
            lost = shards[:j]
            alive = shards[j:]
            try:
                plans.append(code.repair_plan(lost, alive))
            except ValueError:
                pass
        return plans

    # -- recovery timeline -------------------------------------------------------

    def predict(
        self,
        profile: ExperimentProfile,
        workload: Workload,
        faults: Optional[Sequence[FaultSpec]] = None,
    ) -> TwinPrediction:
        """The full analytical evaluation: WA, repair bytes, timeline."""
        faults = list(faults) if faults is not None else [FaultSpec(level="node")]
        cal = self.calibration
        code = _code_for(profile)
        config = profile.ceph
        layout = layout_object(
            workload.object_size, code.n, code.k, profile.stripe_unit
        )
        chunk = layout.chunk_stored_bytes
        disk = profile.disk_spec()
        nic = M5_NIC
        objects = workload.num_objects
        workload_bytes = objects * workload.object_size
        used_bytes = self.predict_used_bytes(profile, workload)
        wa_actual = used_bytes / workload_bytes if workload_bytes else 0.0
        settings = {
            "ec_plugin": profile.ec_plugin,
            "ec_params": dict(profile.ec_params),
            "pg_num": profile.pg_num,
            "stripe_unit": profile.stripe_unit,
            "cache_scheme": profile.cache_scheme,
            "failure_domain": profile.failure_domain,
        }

        crash = [spec for spec in faults if spec.level in _CRASH_LEVELS]
        loss_dist = _loss_distribution(profile, crash)
        p_affected = sum(p for j, p in loss_dist if j >= 1)
        if not crash or p_affected <= 0:
            return TwinPrediction(
                label=profile.name,
                settings=settings,
                recovery_time=0.0,
                checking_period=0.0,
                ec_recovery_period=0.0,
                wa_actual=wa_actual,
                used_bytes=used_bytes,
                workload_bytes=workload_bytes,
                repair_bytes_read=0.0,
                repair_bytes_written=0.0,
                affected_objects=0.0,
                lost_chunks=0.0,
            )

        backend = _ghost_backend(profile, workload)
        costs = self._plan_costs(profile, workload, loss_dist, backend)
        affected_objects = objects * p_affected
        lost_chunks = affected_objects * costs.lost_shards
        repair_read = affected_objects * costs.net_read_bytes
        repair_written = lost_chunks * chunk

        # Cluster shape after the osdmap change.  Correlated crashes
        # dissolve into their host-equivalents here: capacity math only
        # cares how many hosts' worth of daemons left the cluster.
        osds = profile.num_hosts * profile.osds_per_host
        down_hosts = sum(
            spec.count for spec in crash if spec.level == "node"
        ) + sum(
            _correlated_host_equivalents(profile, spec)
            for spec in crash
            if spec.level == "correlated_crash"
        )
        failed_osds = down_hosts * profile.osds_per_host + sum(
            spec.count for spec in crash if spec.level == "device"
        )
        survivors = max(1, osds - failed_osds)
        surviving_hosts = max(1, profile.num_hosts - down_hosts)

        # PG census.  Every PG whose acting set touches a failed OSD gets
        # queued — including empty ones, which still pay reservation
        # acquisition and peering (why small workloads are PG-overhead
        # bound, fig2b's mechanism at this scale).
        targets_per_pg = costs.lost_shards

        # Per-object push costs (identical for every target of a PG).
        coalescing = backend.write_coalescing()
        write_grant = chunk / config.recovery_write_rate * coalescing
        write_ops = max(
            1, round(sequential_ops(config, chunk) * coalescing)
        )
        write_disk = disk.latency + max(
            chunk / disk.write_bandwidth, write_ops / disk.write_iops
        )
        push_leg = _transfer_time(nic, chunk) + write_grant + write_disk

        # One object op's no-contention pipeline: messaging, parallel
        # pulls (bounded by the slowest leg and the primary's NIC
        # fan-in), decode, parallel pushes.
        fan_in = costs.net_read_bytes / nic.bandwidth
        base_read_phase = max(costs.max_read_leg, fan_in)
        op_fixed = (
            config.recovery_op_overhead
            + costs.decode_service
            + costs.extract_service
            + push_leg
        )
        mean_grant = (
            costs.read_grant_service / costs.reads_count
            if costs.reads_count
            else 0.0
        )
        helpers_per_pg = max(1.0, code.n - costs.lost_shards)
        max_active = config.osd_recovery_max_active

        def per_pg_service(objects_pg: float, read_phase: float) -> float:
            """Reservation-hold time of one PG: peering + object batch.

            The recovery_ops throttle (``osd_recovery_max_active`` per
            primary) only bites once a PG holds more objects than slots;
            below that the batch costs one op latency.
            """
            peering = (
                config.peering_base + config.peering_per_object * objects_pg
            )
            if objects_pg <= 0:
                return peering
            op = op_fixed + read_phase
            batch = op * max(
                min(objects_pg, 1.0), objects_pg / max_active
            )
            return peering + max(
                batch, objects_pg * costs.net_read_bytes / nic.bandwidth
            )

        # Reservation-makespan regimes.  Each PG holds osd_max_backfills
        # slots on {primary, targets} for its whole recovery, so the
        # makespan is governed by how replacement targets distribute:
        #
        # * device fault under the host failure domain: CRUSH retries
        #   inside the failed OSD's bucket first, so every affected PG
        #   targets the *sibling* OSD on the same host — one serial
        #   chain per failed device (fig2d's surprise: half the repair
        #   work, 2.7x the time).  Pull queueing is steady-state and
        #   local to the chain PG's surviving acting set.
        # * node fault (bucket fully excluded) or osd failure domain:
        #   targets spread across survivors; convoying through sorted
        #   reservation acquisition yields the N**chain_exponent law,
        #   and the concurrently-active PGs' pull bursts queue on the
        #   shared helper-grant pool (grant_contention).
        device_count = sum(
            spec.count for spec in crash if spec.level == "device"
        )
        node_count = sum(spec.count for spec in crash if spec.level == "node")
        concentrated = (
            device_count > 0
            and profile.failure_domain == FailureDomain.HOST
            and profile.osds_per_host > 1
        )
        chain_makespan = 0.0
        spread_p = p_affected
        if concentrated:
            pgs_per_device = profile.pg_num * code.n / osds
            p_device_pg = pgs_per_device / profile.pg_num
            chain_objects_pg = (
                objects * min(1.0, p_device_pg * device_count)
                / max(1.0, pgs_per_device * device_count)
            )
            chain_ops = min(max_active, max(1.0, chain_objects_pg))
            chain_read_phase = max(
                base_read_phase,
                costs.reads_count * mean_grant * chain_ops / helpers_per_pg,
            )
            chain_makespan = (
                pgs_per_device
                * per_pg_service(chain_objects_pg, chain_read_phase)
                * (1.0 + cal.chain_coupling * (device_count - 1))
            )
            # Only the node-fault share (if any) still spreads.
            spread_p = sum(
                p for j, p in _loss_distribution(
                    profile,
                    [s for s in crash if s.level == "node"],
                ) if j >= 1
            ) if node_count else 0.0
        spread_pgs = profile.pg_num * spread_p
        spread_makespan = 0.0
        effective_pgs = 1.0
        if spread_pgs > 0:
            effective_pgs = max(
                1.0, spread_pgs ** (1.0 - cal.chain_exponent)
            )
            spread_objects_pg = objects * spread_p / spread_pgs
            concurrent_ops = effective_pgs * min(
                max_active, max(1.0, spread_objects_pg)
            )
            # Spread targets mean spread pulls: the burst pool is the
            # whole survivor set, not any one PG's acting set.
            depth = concurrent_ops * costs.reads_count / survivors
            spread_read_phase = (
                base_read_phase
                + max(0.0, depth - 1.0) * mean_grant * cal.grant_contention
            )
            spread_makespan = (
                per_pg_service(spread_objects_pg, spread_read_phase)
                * spread_pgs**cal.chain_exponent
                # Max-of-N straggler: the slowest PG sets the makespan.
                * (1.0 + cal.straggler / math.sqrt(spread_pgs))
            )

        op_tail = op_fixed + base_read_phase
        bounds = [
            chain_makespan,
            spread_makespan,
            # Per-survivor recovery-read grant pool (1 server each).
            affected_objects
            * costs.read_grant_service
            / (survivors * cal.read_efficiency),
            # Replacement-target write pool: only targets hold busy
            # write servers, ~t/(1+t) of the reserved set.
            lost_chunks
            * (write_grant + write_disk)
            / (
                survivors
                * cal.write_efficiency
                * (targets_per_pg / (1.0 + targets_per_pg))
            ),
            # Primary decode workers on the concurrently-active PGs.
            affected_objects
            * (costs.decode_service + costs.extract_service)
            / (effective_pgs * cal.cpu_per_primary),
            # Aggregate fabric: every repair byte crosses the wire twice
            # (helper->primary, primary->target).
            (repair_read + repair_written)
            / (surviving_hosts * nic.bandwidth),
        ]
        # WAN-hop term (stretch clusters only).  With the region rule the
        # primary's home region holds ~n/R shards of each stripe; every
        # helper the plan needs beyond the surviving local ones is pulled
        # over the WAN — serialised on the home region's uplink ingress
        # and the (R-1) remote uplinks' egress, plus one one-way WAN
        # latency folded into each affected object's pipeline.
        wan_cross_bytes: Optional[float] = None
        if profile.num_regions > 1:
            local_shards = code.n / profile.num_regions
            cross_reads = max(
                0.0,
                costs.reads_count
                - max(0.0, local_shards - costs.lost_shards),
            )
            cross_frac = (
                cross_reads / costs.reads_count if costs.reads_count else 0.0
            )
            wan_cross_bytes = repair_read * cross_frac
            bounds.append(wan_cross_bytes / profile.wan_ingress_bandwidth)
            bounds.append(
                wan_cross_bytes
                / (
                    profile.wan_egress_bandwidth
                    * max(1, profile.num_regions - 1)
                )
            )
            if cross_reads > 0:
                op_tail += profile.wan_latency
        ec_period = max(bounds) + op_tail

        # Detection to first peering completion: the down/out interval
        # (tick-aligned in the DES) plus the first PG through peering.
        checking = (
            config.mon_osd_down_out_interval
            + cal.out_quantisation
            + config.peering_base
            + config.peering_per_object * (objects / profile.pg_num)
        )
        # Time-at-risk (cascade loads only): expected aggregate PG-time
        # spent at the redundancy floor.  A stripe sits at margin <= 0
        # exactly when it lost >= tolerance shards; each such PG is
        # exposed from the fault until its recovery completes, bounded
        # above by the full predicted cycle.
        time_at_risk: Optional[float] = None
        if any(spec.level == "correlated_crash" for spec in crash):
            p_at_min = sum(
                p for j, p in loss_dist if j >= code.fault_tolerance()
            )
            time_at_risk = profile.pg_num * p_at_min * (checking + ec_period)
        return TwinPrediction(
            label=profile.name,
            settings=settings,
            recovery_time=checking + ec_period,
            checking_period=checking,
            ec_recovery_period=ec_period,
            wa_actual=wa_actual,
            used_bytes=used_bytes,
            workload_bytes=workload_bytes,
            repair_bytes_read=repair_read,
            repair_bytes_written=repair_written,
            affected_objects=affected_objects,
            lost_chunks=lost_chunks,
            wan_cross_read_bytes=wan_cross_bytes,
            time_at_risk=time_at_risk,
        )

    # -- client-path p99 ---------------------------------------------------------

    def predict_degraded_p99(
        self,
        profile: ExperimentProfile,
        objects: int = 48,
        object_size: int = 8 * 1024 * 1024,
        interval: float = 0.25,
    ) -> float:
        """Degraded-read p99 during the down-not-out checking window.

        Mirrors the evaluator's :func:`measure_degraded_p99` scenario:
        one host down, no recovery traffic yet (the window closes before
        the down/out interval), an open-loop read stream.  A degraded
        read fetches k surviving shards in parallel — the slowest leg is
        disk service plus the k-way fan-in on the coordinator's NIC —
        then pays an on-the-fly decode.
        """
        code = _code_for(profile)
        config = profile.ceph
        layout = layout_object(object_size, code.n, code.k, profile.stripe_unit)
        chunk = layout.chunk_stored_bytes
        disk = profile.disk_spec()
        nic = M5_NIC
        ops = sequential_ops(config, chunk)
        disk_svc = disk.latency + max(
            chunk / disk.read_bandwidth, ops / disk.read_iops
        )
        survivors = max(
            1, (profile.num_hosts - 1) * profile.osds_per_host
        )
        # Light self-interference of the open-loop stream.
        arrival = code.k / interval / survivors
        rho = min(0.9, arrival * disk_svc)
        fan_in = code.k * (chunk / nic.bandwidth + nic.message_overhead)
        decode = _decode_time(
            config,
            chunk,
            1.0,
            layout.units * code.sub_chunk_count,
            getattr(code, "cpu_cost_factor", 1.0),
        )
        latency = (
            0.001  # RadosClient.request_overhead
            + disk_svc / (1.0 - rho)
            + fan_in
            + nic.latency
            + decode
        )
        return latency * self.calibration.p99_inflation

    def predict_tenant_slo_p99(
        self,
        profile: ExperimentProfile,
        objects: int = 32,
        object_size: int = 4 * 1024 * 1024,
        interval: float = 0.5,
        reservation: float = 0.2,
    ) -> float:
        """A reserved tenant's read p99 beside a saturating batch tenant.

        The mClock floor guarantees the latency tenant ``reservation`` of
        every OSD's service rate; its weight share (4:1 in the probe
        fleet) usually grants more.  The batch tenant's utilisation
        inflates queueing up to that floor — the knee the tenant probe
        measures.
        """
        base = self.predict_degraded_p99(
            profile, objects=objects, object_size=object_size, interval=interval
        )
        weight_share = 4.0 / 5.0
        share = max(reservation, weight_share)
        # The batch competitor saturates; the scheduler still serves the
        # latency class at `share` of each device, so its effective
        # service stretches by at most 1/share, damped by contention.
        stretch = 1.0 + self.calibration.tenant_contention * (
            1.0 / max(share, 1e-6) - 1.0
        )
        floor_stretch = 1.0 / max(reservation, 1e-6)
        return base * min(stretch, floor_stretch)

    def predict_overwrite_amplification(
        self, profile: ExperimentProfile, rmw_fraction: float = 1.0
    ) -> float:
        """Device bytes rewritten per logical overwrite byte.

        The closed form behind :func:`repro.core.wa.overwrite_amplification`:
        a partial-stripe RMW of one stripe unit rewrites the data unit
        plus every parity unit — ``1 + m`` — while a full-stripe
        overwrite re-encodes in place at the ingest ratio ``n / k``.
        ``rmw_fraction`` mixes the two (1.0 = all partial RMWs).
        """
        if not 0.0 <= rmw_fraction <= 1.0:
            raise ValueError("rmw_fraction must be in [0, 1]")
        code = _code_for(profile)
        m = code.n - code.k
        return rmw_fraction * (1.0 + m) + (1.0 - rmw_fraction) * (
            code.n / code.k
        )


_DEFAULT_TWIN = AnalyticalTwin()


def predict(
    profile: ExperimentProfile,
    workload: Workload,
    faults: Optional[Sequence[FaultSpec]] = None,
) -> TwinPrediction:
    """Module-level convenience around a default-calibrated twin."""
    return _DEFAULT_TWIN.predict(profile, workload, faults)


def predict_degraded_p99(profile: ExperimentProfile, **kwargs) -> float:
    """Default-calibrated :meth:`AnalyticalTwin.predict_degraded_p99`."""
    return _DEFAULT_TWIN.predict_degraded_p99(profile, **kwargs)


def predict_tenant_slo_p99(profile: ExperimentProfile, **kwargs) -> float:
    """Default-calibrated :meth:`AnalyticalTwin.predict_tenant_slo_p99`."""
    return _DEFAULT_TWIN.predict_tenant_slo_p99(profile, **kwargs)


def predict_overwrite_amplification(
    profile: ExperimentProfile, rmw_fraction: float = 1.0
) -> float:
    """Default-calibrated :meth:`AnalyticalTwin.predict_overwrite_amplification`."""
    return _DEFAULT_TWIN.predict_overwrite_amplification(profile, rmw_fraction)
