"""Deterministic chaos-campaign harness.

Randomized-but-valid fault/workload campaigns over the simulated DSS,
with global invariants checked after every step, ddmin shrinking of
failing schedules, and replayable JSON repro artifacts.  See
docs/TESTING.md for the harness contract.
"""

from .artifact import ArtifactError, ReproArtifact, load_artifact, save_artifact
from .campaign import CampaignSpec, ScheduledAction
from .engine import (
    CampaignInvalid,
    CampaignResult,
    ChaosReport,
    campaign_seed,
    run_campaign,
    run_chaos,
)
from .invariants import InvariantSuite, InvariantViolation
from .sampler import cascade_scenario, sample_campaign
from .shrink import ddmin, shrink_campaign, shrink_campaign_by

__all__ = [
    "ArtifactError",
    "CampaignInvalid",
    "CampaignResult",
    "CampaignSpec",
    "ChaosReport",
    "InvariantSuite",
    "InvariantViolation",
    "ReproArtifact",
    "ScheduledAction",
    "campaign_seed",
    "cascade_scenario",
    "ddmin",
    "load_artifact",
    "run_campaign",
    "run_chaos",
    "sample_campaign",
    "save_artifact",
    "shrink_campaign",
    "shrink_campaign_by",
]
