"""Global invariant oracles checked after every campaign step.

Each checker inspects live cluster state and returns a list of
:class:`InvariantViolation` (empty when the invariant holds).  The
checkers are deliberately *redundant* with the mechanisms they watch —
durability re-derives decodability from the code itself, byte
conservation re-adds the ledger against the OSD backends — so a bug in
either side trips the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..cluster.ceph import CephCluster
from ..cluster.health import HealthStatus, check_health
from ..core.timeline import first_nonmonotone
from ..tenancy.accounting import fleet_reports
from ..tenancy.fleet import TenantFleet

__all__ = [
    "InvariantViolation",
    "check_durability",
    "check_wa_conservation",
    "check_log_monotonicity",
    "check_log_bounded_repair",
    "check_converged",
    "check_version_convergence",
    "check_cross_region_accounting",
    "check_byzantine_containment",
    "check_priority_soundness",
    "check_no_avoidable_loss",
    "check_tenant_fairness",
    "InvariantSuite",
]


@dataclass(frozen=True)
class InvariantViolation:
    """One invariant failure, with enough context to debug and replay."""

    invariant: str
    detail: str
    at_time: float
    step: int = -1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "at_time": self.at_time,
            "step": self.step,
        }


def _damaged_shards(cluster: CephCluster, pg) -> set:
    """Shard positions of a PG that are currently unreadable or corrupt.

    A shard is damaged if its acting OSD is down (crash faults) or if the
    integrity store records unrepaired silent corruption on it.  Objects
    in one PG share the acting set, so per-PG damage bounds per-object
    damage; corruption is tracked per stripe and unioned in per object by
    the caller.
    """
    return {
        shard
        for shard, osd_id in enumerate(pg.acting)
        if not cluster.osds[osd_id].is_up()
    }


def check_durability(cluster: CephCluster) -> List[InvariantViolation]:
    """No acked write may become undecodable within guaranteed tolerance.

    For every stored object: the union of crash-unavailable shards and
    silently-corrupted shards must stay within the code's guaranteed
    fault tolerance, *and* the code itself must produce a repair plan for
    exactly that loss pattern — the decodability oracle is the erasure
    code, not the injector's bookkeeping.
    """
    violations: List[InvariantViolation] = []
    code = cluster.pool.code
    tolerance = code.fault_tolerance()
    now = cluster.env.now
    for pg in cluster.pool.pgs.values():
        if not pg.objects:
            continue
        down = _damaged_shards(cluster, pg)
        for obj in pg.objects:
            corrupt = cluster.integrity.corrupt_shards(pg.pgid, obj.name)
            # Stale shards (missed a degraded write) hold old content:
            # they cannot serve reads or repairs, so they count as
            # damage exactly like corruption until delta-repaired.
            stale = (
                pg.log.stale_shards(obj.name) if pg.log is not None else set()
            )
            # Byzantine shards that lied about applying a write hold no
            # real data — damage, just silent (forged-checksum shards
            # already sit in the integrity store's corrupt set).
            byz = getattr(cluster, "byzantine", None)
            lied = byz.damaged_shards(pg.pgid, obj.name) if byz else set()
            damaged = down | corrupt | stale | lied
            if not damaged:
                continue
            if len(damaged) > tolerance:
                violations.append(
                    InvariantViolation(
                        "durability",
                        f"object {pg.pgid}/{obj.name} has {len(damaged)} damaged "
                        f"shards {sorted(damaged)} > guaranteed tolerance "
                        f"{tolerance} of {code.plugin_name}({code.n},{code.k})",
                        at_time=now,
                    )
                )
                continue
            alive = [s for s in range(code.n) if s not in damaged]
            try:
                code.repair_plan(sorted(damaged), alive)
            except Exception as exc:  # noqa: BLE001 - any failure is the finding
                violations.append(
                    InvariantViolation(
                        "durability",
                        f"object {pg.pgid}/{obj.name} undecodable with damage "
                        f"{sorted(damaged)} (within tolerance {tolerance}): {exc}",
                        at_time=now,
                    )
                )
    return violations


def check_wa_conservation(cluster: CephCluster) -> List[InvariantViolation]:
    """WA accounting conserves bytes, exactly.

    client + parity/padding + metadata + repair must equal the summed
    OSD-level usage — the two sides are maintained by independent code
    paths (the ledger at the write sites, the BlueStore counters inside
    the backends), so any drift between them is an accounting bug.
    """
    ledger = cluster.ledger
    used = cluster.used_bytes_total()
    if ledger.device_bytes == used:
        return []
    return [
        InvariantViolation(
            "wa-conservation",
            f"ledger says {ledger.device_bytes} B "
            f"(client={ledger.client_bytes} parity+padding="
            f"{ledger.parity_padding_bytes} metadata={ledger.metadata_bytes} "
            f"repair={ledger.repair_bytes}) but OSDs account {used} B "
            f"(drift {used - ledger.device_bytes:+d})",
            at_time=cluster.env.now,
        )
    ]


def check_log_monotonicity(cluster: CephCluster) -> List[InvariantViolation]:
    """Every node's log must be time-monotone (append-only, clock-forward)."""
    violations: List[InvariantViolation] = []
    for log in cluster.all_logs():
        index = first_nonmonotone(log.records)
        if index is not None:
            violations.append(
                InvariantViolation(
                    "timeline-monotone",
                    f"log of {log.node} runs backwards at record {index}: "
                    f"{log.records[index]}",
                    at_time=cluster.env.now,
                )
            )
    return violations


def check_log_bounded_repair(cluster: CephCluster) -> List[InvariantViolation]:
    """Delta recovery never moves more bytes than its accrued allowance.

    Every delta attempt credits its planned pull+push bytes to
    ``delta_budget_bytes`` *before* the I/O runs, and the budget only
    grows with objects actually dirtied during an outage (plus
    gray-fault retries).  Spent bytes overtaking the budget means delta
    recovery is doing work the log never justified — e.g. silently
    degenerating into a full sweep while still counting as "delta".
    """
    stats = cluster.recovery.stats
    spent = stats.delta_bytes_read + stats.delta_bytes_written
    if spent <= stats.delta_budget_bytes:
        return []
    return [
        InvariantViolation(
            "log-bounded-repair",
            f"delta recovery moved {spent} B "
            f"(read={stats.delta_bytes_read} written={stats.delta_bytes_written}) "
            f"> accrued dirty-object allowance {stats.delta_budget_bytes} B",
            at_time=cluster.env.now,
        )
    ]


def check_version_convergence(cluster: CephCluster) -> List[InvariantViolation]:
    """After settle, every live shard agrees on each object's version.

    The pg_log tracks the last version each shard applied.  Once all
    faults are restored and repair has drained, a shard on an up OSD
    still behind the committed object version means a write was lost:
    neither the write path (refresh on overwrite), delta recovery, nor
    backfill brought it current.
    """
    violations: List[InvariantViolation] = []
    now = cluster.env.now
    for pg in cluster.pool.pgs.values():
        log = pg.log
        if log is None:
            continue
        for name, version in log.object_version.items():
            for shard, shard_version in enumerate(log.shard_versions[name]):
                if not cluster.osds[pg.acting[shard]].is_up():
                    continue
                if shard_version != version:
                    violations.append(
                        InvariantViolation(
                            "version-convergence",
                            f"object {pg.pgid}/{name} shard {shard} applied "
                            f"version {shard_version} != committed {version} "
                            f"after settle",
                            at_time=now,
                        )
                    )
    return violations


def check_cross_region_accounting(cluster: CephCluster) -> List[InvariantViolation]:
    """Recovery's cross-region byte counters match the WAN fabric's, exactly.

    Two independent bookkeepers watch the same traffic: the recovery
    manager counts every helper pull and shard push whose endpoints sit
    in different regions, and the WAN fabric counts every payload byte
    delivered across an uplink.  On a read-only stretch campaign with
    scrubbing off, recovery is the *only* subsystem moving bytes between
    regions — so the two totals must agree to the byte.  Any drift means
    either a repair transfer dodged the WAN model or the locality
    accounting misclassified an endpoint.

    Vacuous (returns ``[]``) on single-region clusters and skipped when
    scrubbing is enabled, since scrub repair pulls ride the same fabric
    outside recovery's ledger.
    """
    wan = cluster.topology.wan
    if wan is None:
        return []
    if cluster.scrub.config.enabled:
        return []
    stats = cluster.recovery.stats
    recovered = stats.cross_region_bytes_read + stats.cross_region_bytes_written
    if recovered == wan.cross_region_bytes:
        return []
    return [
        InvariantViolation(
            "cross-region-accounting",
            f"recovery counted {recovered} cross-region B "
            f"(read={stats.cross_region_bytes_read} "
            f"written={stats.cross_region_bytes_written}) but the WAN "
            f"fabric delivered {wan.cross_region_bytes} B "
            f"(drift {wan.cross_region_bytes - recovered:+d})",
            at_time=cluster.env.now,
        )
    ]


def check_priority_soundness(cluster: CephCluster) -> List[InvariantViolation]:
    """Risk-prioritized recovery admits most-at-risk PGs first.

    Every risk-mode admission snapshots the redundancy margins of the
    PGs still waiting at that instant (:class:`~repro.cluster.recovery.
    AdmissionRecord`); a waiting PG with a strictly smaller margin than
    the one admitted means a stripe closer to data loss was left behind
    a safer one.  Vacuous on FIFO runs — they record no admissions —
    and safe to run step-wise (the log only grows).
    """
    violations: List[InvariantViolation] = []
    for record in cluster.recovery.admission_log:
        behind = [m for m in record.pending_margins if m < record.margin]
        if behind:
            violations.append(
                InvariantViolation(
                    "priority-soundness",
                    f"pg {record.pg_id} (margin {record.margin}) admitted at "
                    f"t={record.at:g} ahead of {len(behind)} pending PG(s) at "
                    f"lower margin {sorted(behind)}",
                    at_time=record.at,
                )
            )
    return violations


def check_no_avoidable_loss(cluster: CephCluster) -> List[InvariantViolation]:
    """Data loss never occurs while a viable alternative placement existed.

    Checked once after settle.  The recovery manager keeps an audit
    trail of every PG it abandoned while a healthy placement with spare
    capacity demonstrably existed (``_abandoned_with_alternative``);
    entries clear when the PG later recovers.  A surviving entry whose
    PG ended the run below k live shards convicts the recovery policy:
    the data was lost even though, at abandon time, the cluster had
    somewhere safe to put it.
    """
    violations: List[InvariantViolation] = []
    recovery = cluster.recovery
    k = cluster.pool.code.k
    now = cluster.env.now
    for pg_id, abandoned_at in sorted(
        recovery._abandoned_with_alternative.items()
    ):
        pg = cluster.pool.pgs[pg_id]
        alive = sum(
            1 for osd_id in pg.acting if cluster.osds[osd_id].is_up()
        )
        if alive < k:
            violations.append(
                InvariantViolation(
                    "no-avoidable-loss",
                    f"pg {pg.pgid} ended with {alive} < k={k} live shards "
                    f"but a healthy placement with spare capacity existed "
                    f"when recovery abandoned it at t={abandoned_at:g}",
                    at_time=now,
                )
            )
    return violations


def check_converged(cluster: CephCluster) -> List[InvariantViolation]:
    """End-of-campaign convergence: restore + recovery + scrub => HEALTH_OK.

    Called once after the settle phase.  Every fault was restored and
    every repair given time to drain, so the cluster must report clean
    health: no down/out OSDs, recovery idle, scrub quiescent, and the
    live health verdict back at HEALTH_OK (the ERR -> WARN -> OK arc).
    """
    violations: List[InvariantViolation] = []
    now = cluster.env.now
    down = [osd.name for osd in cluster.osds.values() if not osd.is_up()]
    if down:
        violations.append(
            InvariantViolation(
                "health-convergence", f"OSDs still down after settle: {down}",
                at_time=now,
            )
        )
    if cluster.monitor.out_osds:
        violations.append(
            InvariantViolation(
                "health-convergence",
                f"OSDs still out after settle: {sorted(cluster.monitor.out_osds)}",
                at_time=now,
            )
        )
    if not cluster.recovery.idle:
        violations.append(
            InvariantViolation(
                "health-convergence", "recovery still in flight after settle",
                at_time=now,
            )
        )
    if cluster.scrub.config.enabled and not cluster.scrub.quiescent():
        violations.append(
            InvariantViolation(
                "health-convergence",
                f"scrub not quiescent after settle "
                f"({cluster.integrity.corrupted_chunk_count()} corrupt chunks left)",
                at_time=now,
            )
        )
    pins = sorted(cluster.monitor.active_pins())
    if pins:
        violations.append(
            InvariantViolation(
                "health-convergence",
                f"flap-dampening pins still active after settle: "
                f"{[f'osd.{osd_id}' for osd_id in pins]}",
                at_time=now,
            )
        )
    report = check_health(cluster)
    if report.status != HealthStatus.OK:
        violations.append(
            InvariantViolation(
                "health-convergence",
                f"health is {report.status} after settle: {list(report.checks)}",
                at_time=now,
            )
        )
    return violations


def check_byzantine_containment(cluster: CephCluster) -> List[InvariantViolation]:
    """Byzantine lies stay contained: no wrong reads, every lie detected.

    Checked once after settle (detection latency is the point — a lie
    *mid-run* is not a violation).  Vacuous on honest runs: clusters
    that never saw a Byzantine fault carry no ``ByzantineState``.

    * **Zero wrong reads** — no client read was ever served from a shard
      that was still lying (undetected forged checksum or false-acked
      write) at read time.  Detection ends the lie; reads after that are
      served from repaired/excluded shards and are fine.
    * **Total detection** — by end of settle every injected lie must
      have been caught by some defense (deep-scrub EC cross-check,
      peering version check, or the monitor's epoch-mismatch rejection)
      with its time-to-detection recorded in the digest.
    """
    byz = getattr(cluster, "byzantine", None)
    if byz is None:
        return []
    violations: List[InvariantViolation] = []
    now = cluster.env.now
    if byz.wrong_reads_served > 0:
        violations.append(
            InvariantViolation(
                "byzantine-containment",
                f"{byz.wrong_reads_served} client reads served from "
                f"still-lying shards before detection",
                at_time=now,
            )
        )
    for record in byz.records:
        if record.detected_at is None:
            violations.append(
                InvariantViolation(
                    "byzantine-containment",
                    f"{record.level} on osd.{record.osd_id}"
                    + (
                        f" ({record.pgid}/{record.object_name} "
                        f"shard {record.shard})"
                        if record.pgid
                        else ""
                    )
                    + f" injected at t={record.injected_at:g} "
                    f"never detected by end of settle",
                    at_time=now,
                )
            )
    return violations


def check_tenant_fairness(
    cluster: CephCluster,
    fleet: TenantFleet,
    fault_start: Optional[float],
) -> List[InvariantViolation]:
    """QoS kept its promises: no starved reservation, violations attributable.

    Checked once after settle, when the fleet has drained and every
    restored fault has had time to heal:

    * **No starvation** — no request is still queued in any scheduler,
      and every QoS class that enqueued work was fully served.  A class
      holding a nonzero reservation that still has a backlog means
      mClock let other classes eat its guaranteed share.
    * **Attributability** — every tenant SLO-violation window must
      overlap the faulty portion of the run (first injection onward;
      recovery competition legitimately outlives the restore).  A
      violation in the fault-free prefix means QoS alone — with the
      cluster healthy — failed the tenant's declared SLO.
    """
    violations: List[InvariantViolation] = []
    now = cluster.env.now
    pending = fleet.qos_pending()
    if pending:
        violations.append(
            InvariantViolation(
                "qos-starvation",
                f"{pending} requests still queued in QoS schedulers after "
                f"settle",
                at_time=now,
            )
        )
    reservations = {
        qos_class.name: qos_class.reservation
        for qos_class in fleet.spec.read_classes()
    }
    for name, totals in sorted(fleet.qos_class_totals().items()):
        backlog = totals["enqueued"] - totals["served"]
        if backlog > 0:
            violations.append(
                InvariantViolation(
                    "qos-starvation",
                    f"class {name} (reservation "
                    f"{reservations.get(name, 0.0):g}) still has {backlog:g} "
                    f"unserved requests after settle",
                    at_time=now,
                )
            )
    if fleet.started_at is not None:
        for report in fleet_reports(fleet):
            for start, end in report.slo_violations:
                if fault_start is None or end < fault_start:
                    violations.append(
                        InvariantViolation(
                            "slo-attribution",
                            f"tenant {report.name} violated its SLO in "
                            f"[{start:g}, {end:g}] "
                            + (
                                "with no fault ever injected"
                                if fault_start is None
                                else f"before the first fault at {fault_start:g}"
                            ),
                            at_time=now,
                        )
                    )
    return violations


#: The step-wise checkers (convergence checks are end-of-campaign only).
STEP_CHECKS = (
    check_durability,
    check_wa_conservation,
    check_log_monotonicity,
    check_log_bounded_repair,
    check_cross_region_accounting,
    check_priority_soundness,
)


@dataclass
class InvariantSuite:
    """Runs the step-wise checkers and accumulates violations.

    ``extra_checks`` lets tests (and the shrinker's harness) plug in
    additional oracles with the same ``cluster -> [violation]`` shape.
    ``extra_final_checks`` are run only by :meth:`check_final` — for
    oracles that would false-positive mid-run (e.g. tenant fairness,
    which must wait for the fleet and the schedulers to drain).
    """

    cluster: CephCluster
    extra_checks: tuple = ()
    extra_final_checks: tuple = ()
    violations: List[InvariantViolation] = field(default_factory=list)

    def check_step(self, step: int) -> List[InvariantViolation]:
        """Run all step-wise invariants; record and return new violations."""
        found: List[InvariantViolation] = []
        for checker in (*STEP_CHECKS, *self.extra_checks):
            for violation in checker(self.cluster):
                found.append(
                    InvariantViolation(
                        violation.invariant,
                        violation.detail,
                        violation.at_time,
                        step=step,
                    )
                )
        self.violations.extend(found)
        return found

    def check_final(self, step: int) -> List[InvariantViolation]:
        """Run the end-of-campaign convergence checks on top of a step check."""
        found = self.check_step(step)
        for checker in (
            check_converged,
            check_version_convergence,
            check_byzantine_containment,
            check_no_avoidable_loss,
            *self.extra_final_checks,
        ):
            for violation in checker(self.cluster):
                stamped = InvariantViolation(
                    violation.invariant, violation.detail, violation.at_time,
                    step=step,
                )
                found.append(stamped)
                self.violations.append(stamped)
        return found
