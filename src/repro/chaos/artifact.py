"""Replayable repro artifacts for failing chaos campaigns.

When a campaign violates an invariant, the runner shrinks its schedule
and writes one JSON artifact with everything needed to re-execute the
failure exactly: the (shrunk) campaign spec, the violations it produced,
and the outcome hash the replay must reproduce.  ``ecfault replay
<artifact>`` re-runs the spec and exits 0 only when the hash matches —
i.e. the failure reproduced bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from .campaign import CampaignSpec
from .invariants import InvariantViolation

__all__ = ["ReproArtifact", "ArtifactError", "save_artifact", "load_artifact"]

FORMAT = "ecfault-chaos-repro"
VERSION = 1


class ArtifactError(ValueError):
    """The file is not a valid chaos repro artifact."""


@dataclass(frozen=True)
class ReproArtifact:
    """One failing campaign, shrunk, with its expected outcome."""

    spec: CampaignSpec
    violations: List[InvariantViolation]
    outcome_hash: str
    #: The pre-shrink spec, kept for forensics (None when not shrunk).
    original_spec: Optional[CampaignSpec] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "format": FORMAT,
            "version": VERSION,
            "spec": self.spec.to_dict(),
            "violations": [violation.to_dict() for violation in self.violations],
            "outcome_hash": self.outcome_hash,
        }
        if self.original_spec is not None:
            data["original_spec"] = self.original_spec.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReproArtifact":
        if not isinstance(data, dict) or data.get("format") != FORMAT:
            raise ArtifactError(
                f"not a {FORMAT} artifact (format={data.get('format')!r})"
                if isinstance(data, dict)
                else "artifact root must be a JSON object"
            )
        if data.get("version") != VERSION:
            raise ArtifactError(
                f"unsupported artifact version {data.get('version')!r} "
                f"(supported: {VERSION})"
            )
        try:
            spec = CampaignSpec.from_dict(data["spec"])
            violations = [
                InvariantViolation(**violation) for violation in data["violations"]
            ]
            outcome_hash = data["outcome_hash"]
            original = (
                CampaignSpec.from_dict(data["original_spec"])
                if "original_spec" in data
                else None
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(f"malformed artifact: {exc}") from exc
        if not isinstance(outcome_hash, str) or not outcome_hash:
            raise ArtifactError("artifact outcome_hash must be a non-empty string")
        return cls(
            spec=spec,
            violations=violations,
            outcome_hash=outcome_hash,
            original_spec=original,
        )


def save_artifact(artifact: ReproArtifact, path) -> Path:
    """Write an artifact as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path) -> ReproArtifact:
    """Read and validate an artifact file.

    Raises :class:`ArtifactError` on anything that is not a well-formed
    artifact (bad JSON, wrong format marker, missing fields).
    """
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"artifact {path} is not valid JSON: {exc}") from exc
    return ReproArtifact.from_dict(data)
