"""Campaign specifications: one point in the config x workload x fault space.

A :class:`CampaignSpec` is a *complete, self-contained* description of one
chaos campaign: the sampled cluster configuration, the workload, and a
timed schedule of fault actions.  Everything the engine needs is in the
spec — nothing is re-sampled at run time — which is what makes a campaign
replayable byte-for-byte from its JSON form (the repro-artifact contract).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..cluster.osd import CephConfig
from ..core.fault_injector import (
    BYZ_LEVELS,
    CASCADE_LEVELS,
    GEO_LEVELS,
    FaultSpec,
)
from ..core.profile import ExperimentProfile
from ..geo.wan import DEFAULT_WAN
from ..tenancy.spec import TenantFleetSpec
from ..workload.generator import Workload

__all__ = ["ScheduledAction", "CampaignSpec"]

#: Action kinds a schedule may contain.
ACTION_KINDS = ("inject", "restore")


@dataclass(frozen=True)
class ScheduledAction:
    """One timed step of a campaign.

    ``at`` is absolute simulation time (seconds).  ``kind`` is ``inject``
    (apply the embedded fault spec) or ``restore`` (undo every injected
    crash fault; silent corruption stays until a scrub repairs it).
    """

    at: float
    kind: str = "inject"
    level: str = "node"
    count: int = 1
    colocation: str = "any"
    corruption: str = "bit_rot"
    # -- gray-fault parameters (only read for the matching level) -------------
    factor: float = 4.0
    loss: float = 0.0
    latency: float = 0.0
    bandwidth_penalty: float = 1.0
    partition: bool = False
    flap_interval: float = 60.0
    # -- correlated-crash parameter (only read for that level) ----------------
    domain: str = "host"

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"action time must be >= 0, got {self.at}")
        if self.kind not in ACTION_KINDS:
            raise ValueError(
                f"unknown action kind {self.kind!r}; allowed: {ACTION_KINDS}"
            )
        if self.kind == "inject":
            # Fail at spec-build time, not mid-campaign.
            self.fault_spec()

    def fault_spec(self) -> FaultSpec:
        """The FaultSpec an inject action applies (validates fields)."""
        return FaultSpec(
            level=self.level,
            count=self.count,
            colocation=self.colocation,
            corruption=self.corruption,
            factor=self.factor,
            loss=self.loss,
            latency=self.latency,
            bandwidth_penalty=self.bandwidth_penalty,
            partition=self.partition,
            flap_interval=self.flap_interval,
            domain=self.domain,
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScheduledAction":
        return cls(**data)


@dataclass(frozen=True)
class CampaignSpec:
    """One sampled campaign: seed, configuration, workload, schedule."""

    seed: int
    # -- cluster configuration (the sampled Table-1 row) ---------------------
    ec_plugin: str = "jerasure"
    ec_params: Tuple[Tuple[str, int], ...] = (("k", 4), ("m", 2))
    pg_num: int = 8
    stripe_unit: int = 262144
    cache_scheme: str = "autotune"
    failure_domain: str = "host"
    num_hosts: int = 8
    osds_per_host: int = 2
    #: Racks the hosts are dealt across (round-robin).  1 (the default)
    #: keeps the classic rack-less cluster: byte-identical digests.
    num_racks: int = 1
    scrub_interval: float = 0.0
    scrub_pgs_per_batch: int = 2
    # -- stretch-cluster shape ------------------------------------------------
    #: Regions the hosts are dealt across.  1 (the default) keeps the
    #: classic single-site cluster: no WAN fabric, byte-identical digests.
    num_regions: int = 1
    wan_egress_bandwidth: float = DEFAULT_WAN.egress_bandwidth
    wan_ingress_bandwidth: float = DEFAULT_WAN.ingress_bandwidth
    wan_latency: float = DEFAULT_WAN.latency
    wan_egress_cost_per_gib: float = DEFAULT_WAN.egress_cost_per_gib
    # -- daemon tunables kept fast enough for bulk campaigns -----------------
    mon_osd_down_out_interval: float = 60.0
    # -- cascade resilience ---------------------------------------------------
    #: PG recovery servicing order: "fifo" (the legacy order, default —
    #: byte-identical digests) or "risk" (redundancy-margin priority).
    recovery_priority: str = "fifo"
    #: Track per-PG time-at-minimum-redundancy in RecoveryStats.  Off by
    #: default: the extra float stays pruned-at-zero either way, but the
    #: accounting is only meaningful for cascade campaigns.
    track_risk_exposure: bool = False
    # -- workload -------------------------------------------------------------
    num_objects: int = 20
    object_size: int = 1048576
    size_jitter: float = 0.0
    # -- client write load ----------------------------------------------------
    #: Mean seconds between client ops while the mixed load runs.  0.0
    #: (the default) means no client load: the campaign is read-only and
    #: byte-identical to the pre-write-path model.
    write_interval: float = 0.0
    #: Fraction of client ops that are writes (rest are reads).
    write_fraction: float = 0.5
    #: Fraction of writes that are partial-stripe RMWs (rest full).
    rmw_fraction: float = 0.5
    #: How long (sim-seconds, from campaign start) the mixed load runs.
    write_duration: float = 0.0
    # -- tenant fleet ---------------------------------------------------------
    #: Optional multi-tenant client fleet (with per-tenant QoS tags and
    #: SLOs) driving the load instead of the single anonymous stream.
    #: Exclusive with ``write_interval > 0`` — the fleet *replaces* the
    #: legacy client, it does not run beside it.
    tenant_fleet: Optional[TenantFleetSpec] = None
    #: How long (sim-seconds, from campaign start) the fleet runs.
    tenant_duration: float = 0.0
    # -- fault schedule -------------------------------------------------------
    actions: Tuple[ScheduledAction, ...] = field(default_factory=tuple)
    #: Sim-time budget for the final settle phase (recovery + scrub drain).
    settle_time: float = 50_000.0

    def __post_init__(self):
        if self.settle_time <= 0:
            raise ValueError("settle_time must be positive")
        if self.write_interval < 0:
            raise ValueError("write_interval must be >= 0")
        for name in ("write_fraction", "rmw_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.write_interval > 0 and self.write_duration <= 0:
            raise ValueError(
                "a write-enabled campaign (write_interval > 0) needs "
                "write_duration > 0"
            )
        if self.tenant_fleet is not None:
            if self.tenant_duration <= 0:
                raise ValueError(
                    "a tenant campaign (tenant_fleet set) needs "
                    "tenant_duration > 0"
                )
            if self.write_interval > 0:
                raise ValueError(
                    "tenant_fleet and write_interval are exclusive: the "
                    "fleet replaces the single client stream"
                )
        times = [action.at for action in self.actions]
        if times != sorted(times):
            raise ValueError("schedule actions must be time-ordered")
        if self.num_regions < 1:
            raise ValueError("num_regions must be >= 1")
        if self.num_regions > 1:
            # Geo campaigns are read-only with scrubbing off so the
            # cross-region-byte invariant is *exact*: recovery is then
            # the only subsystem moving bytes over the fabric, and its
            # counters must equal the WAN fabric's delivered total.
            if self.scrub_interval > 0:
                raise ValueError(
                    "geo campaigns (num_regions > 1) require scrubbing "
                    "disabled (scrub_interval == 0)"
                )
            if self.write_interval > 0 or self.tenant_fleet is not None:
                raise ValueError(
                    "geo campaigns (num_regions > 1) are exclusive with "
                    "client write load and tenant fleets"
                )
        elif any(
            action.kind == "inject" and action.level in GEO_LEVELS
            for action in self.actions
        ):
            raise ValueError(
                "region-level fault actions require a stretch cluster "
                "(num_regions > 1)"
            )
        if self.scrub_interval <= 0 and any(
            action.kind == "inject"
            and action.level in ("corrupt", "byz_corrupt_data", "byz_false_ack")
            for action in self.actions
        ):
            raise ValueError(
                "corrupt/byz data-plane actions need scrubbing enabled "
                "(scrub_interval > 0); nothing would ever detect or repair "
                "the damage"
            )
        if self.num_racks < 1:
            raise ValueError("num_racks must be >= 1")
        if self.recovery_priority not in ("fifo", "risk"):
            raise ValueError(
                f"recovery_priority must be 'fifo' or 'risk', "
                f"got {self.recovery_priority!r}"
            )
        for action in self.actions:
            if action.kind != "inject" or action.level not in CASCADE_LEVELS:
                continue
            if action.domain == "rack" and self.num_racks <= 1:
                raise ValueError(
                    "rack-level correlated_crash actions require a "
                    "racked cluster (num_racks > 1)"
                )
            if action.domain == "region" and self.num_regions <= 1:
                raise ValueError(
                    "region-level correlated_crash actions require a "
                    "stretch cluster (num_regions > 1)"
                )
        if any(
            action.kind == "inject" and action.level in BYZ_LEVELS
            for action in self.actions
        ):
            # Byzantine campaigns are read-only and single-region so the
            # containment invariant is *provable*: with no client ever
            # constructed there are zero reads to serve wrongly, and the
            # single-site detection paths (scrub, peering, heartbeat
            # epoch checks) are the only moving parts under test.
            if self.write_interval > 0 or self.tenant_fleet is not None:
                raise ValueError(
                    "byzantine fault actions are exclusive with client "
                    "write load and tenant fleets (containment must be "
                    "judged without racing writers)"
                )
            if self.num_regions > 1:
                raise ValueError(
                    "byzantine fault actions require a single-region "
                    "cluster (num_regions == 1)"
                )

    # -- factories ------------------------------------------------------------

    def to_profile(self) -> ExperimentProfile:
        """The ExperimentProfile this campaign deploys (validated)."""
        return ExperimentProfile(
            name=f"chaos-{self.seed}",
            ec_plugin=self.ec_plugin,
            ec_params=dict(self.ec_params),
            pg_num=self.pg_num,
            stripe_unit=self.stripe_unit,
            cache_scheme=self.cache_scheme,
            failure_domain=self.failure_domain,
            num_hosts=self.num_hosts,
            osds_per_host=self.osds_per_host,
            num_racks=self.num_racks,
            scrub_interval=self.scrub_interval,
            scrub_pgs_per_batch=self.scrub_pgs_per_batch,
            num_regions=self.num_regions,
            wan_egress_bandwidth=self.wan_egress_bandwidth,
            wan_ingress_bandwidth=self.wan_ingress_bandwidth,
            wan_latency=self.wan_latency,
            wan_egress_cost_per_gib=self.wan_egress_cost_per_gib,
            ceph=CephConfig(
                mon_osd_down_out_interval=self.mon_osd_down_out_interval,
                osd_recovery_priority=self.recovery_priority,
                osd_track_risk_exposure=self.track_risk_exposure,
            ),
        )

    def to_workload(self) -> Workload:
        return Workload(
            num_objects=self.num_objects,
            object_size=self.object_size,
            size_jitter=self.size_jitter,
        )

    def with_actions(self, actions) -> "CampaignSpec":
        """A copy of the spec with a different (shrunk) schedule."""
        return replace(self, actions=tuple(actions))

    # -- JSON round-trip (the replay contract) --------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["ec_params"] = {key: value for key, value in self.ec_params}
        data["actions"] = [action.to_dict() for action in self.actions]
        data["tenant_fleet"] = (
            self.tenant_fleet.to_dict() if self.tenant_fleet is not None else None
        )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        payload = dict(data)
        payload["ec_params"] = tuple(
            sorted((str(k), int(v)) for k, v in payload["ec_params"].items())
        )
        payload["actions"] = tuple(
            ScheduledAction.from_dict(action) for action in payload["actions"]
        )
        fleet = payload.get("tenant_fleet")
        payload["tenant_fleet"] = (
            TenantFleetSpec.from_dict(fleet) if fleet else None
        )
        return cls(**payload)
