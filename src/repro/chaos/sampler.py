"""Random-but-valid campaign sampling.

Turns one integer seed into a :class:`~repro.chaos.campaign.CampaignSpec`
that is *valid by construction*: the EC parameters satisfy each plugin's
algebraic constraints (Clay's ``q | n``, LRC's ``l | k``, SHEC's window
bound), the cluster has enough failure-domain buckets to place ``n``
shards plus recovery headroom, and the fault schedule never requests
more concurrent damage than the code's guaranteed tolerance.  Rarely a
schedule can still collide with live cluster state (e.g. a corruption
round landing on a stripe that already carries unrepaired damage); the
engine classifies those as *invalid*, not failing.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from ..cluster.bluestore import CACHE_SCHEMES
from ..core.fault_injector import BYZ_LEVELS, FAULT_LEVELS, GRAY_LEVELS
from ..sim.rng import SeedSequence
from ..tenancy.spec import SloSpec, TenantFleetSpec, TenantSpec
from .campaign import CampaignSpec, ScheduledAction

__all__ = ["sample_campaign", "cascade_scenario"]

KB = 1024
MB = 1024 * 1024

#: (plugin, params) choices.  Every entry satisfies its plugin's
#: constructor constraints; Clay entries additionally keep alpha = q^t
#: small enough for fast repair planning.
_EC_CHOICES: List[Tuple[str, Tuple[Tuple[str, int], ...]]] = [
    ("jerasure", (("k", 2), ("m", 1))),
    ("jerasure", (("k", 3), ("m", 2))),
    ("jerasure", (("k", 4), ("m", 2))),
    ("jerasure", (("k", 6), ("m", 3))),
    ("isa", (("k", 4), ("m", 2))),
    ("isa", (("k", 5), ("m", 3))),
    ("clay", (("d", 3), ("k", 2), ("m", 2))),
    ("clay", (("d", 5), ("k", 4), ("m", 2))),
    ("clay", (("d", 5), ("k", 3), ("m", 3))),
    ("lrc", (("k", 4), ("l", 2), ("r", 1))),
    ("lrc", (("k", 4), ("l", 2), ("r", 2))),
    ("lrc", (("k", 6), ("l", 3), ("r", 1))),
    ("shec", (("k", 4), ("l", 2), ("m", 3))),
    ("shec", (("k", 4), ("l", 2), ("m", 2))),
]

_STRIPE_UNITS = (64 * KB, 256 * KB, 1 * MB, 4 * MB)
_OBJECT_SIZES = (256 * KB, 1 * MB, 4 * MB)

#: Regions every geo campaign spreads across (the classic 3-site stretch).
_GEO_REGIONS = 3

#: EC choices safe for a 3-region stretch: the per-region shard cap
#: ``ceil(n / 3)`` must stay within the code's guaranteed tolerance, so
#: one whole region outage never strands an undecodable stripe.
_GEO_EC_CHOICES: List[Tuple[str, Tuple[Tuple[str, int], ...]]] = [
    ("jerasure", (("k", 2), ("m", 1))),
    ("jerasure", (("k", 3), ("m", 2))),
    ("jerasure", (("k", 4), ("m", 2))),
    ("jerasure", (("k", 6), ("m", 3))),
    ("isa", (("k", 4), ("m", 2))),
    ("isa", (("k", 5), ("m", 3))),
    ("clay", (("d", 3), ("k", 2), ("m", 2))),
    ("clay", (("d", 5), ("k", 4), ("m", 2))),
    ("clay", (("d", 5), ("k", 3), ("m", 3))),
    ("lrc", (("k", 4), ("l", 2), ("r", 2))),
]

#: EC choices safe for cascade campaigns: rack-domain placement puts at
#: most one shard per rack, so a whole-rack correlated crash costs one
#: tolerance slot — tolerance >= 2 leaves budget for an aftershock.
_CASCADE_EC_CHOICES: List[Tuple[str, Tuple[Tuple[str, int], ...]]] = [
    ("jerasure", (("k", 3), ("m", 2))),
    ("jerasure", (("k", 4), ("m", 2))),
    ("isa", (("k", 4), ("m", 2))),
    ("clay", (("d", 5), ("k", 3), ("m", 3))),
]


def _shard_count(params: Tuple[Tuple[str, int], ...]) -> int:
    """n = data + parity shards for any of the sampled plugins."""
    values = dict(params)
    if "r" in values:  # LRC: n = k + l + r
        return values["k"] + values["l"] + values["r"]
    return values["k"] + values["m"]


def _tolerance(plugin: str, params: Tuple[Tuple[str, int], ...]) -> int:
    """Guaranteed fault tolerance, mirroring each plugin's contract."""
    values = dict(params)
    if plugin == "shec":
        return 1
    if plugin == "lrc":
        return values["r"] + 1 if values["r"] else 1
    return values["m"]


def sample_campaign(
    seed: int,
    levels: Optional[Sequence[str]] = None,
    writes: bool = False,
    tenants: bool = False,
    geo: bool = False,
    byzantine: bool = False,
    cascade: bool = False,
) -> CampaignSpec:
    """Sample one valid campaign; same seed, same campaign, always.

    ``levels`` restricts which fault levels the schedule may draw (any
    subset of :data:`~repro.core.fault_injector.FAULT_LEVELS`); the
    default allows all of them.  The CI gray-chaos job passes
    ``("slow_device", "net_degrade", "flap")`` to sweep the gray axis in
    isolation.

    ``writes=True`` additionally samples a mixed read-write client load
    that runs through the whole fault schedule.  The write draws happen
    last and only when enabled, so ``writes=False`` consumes exactly the
    same RNG stream as before the write path existed — read-only
    campaigns stay byte-identical.

    ``tenants=True`` instead samples a three-tenant QoS-enabled fleet
    (a reserved latency tenant with an SLO, a rate-limited writing batch
    tenant, a poisson scan tenant) that replaces the single client
    stream, enabling the fairness invariant.  Exclusive with ``writes``;
    the tenant draws happen after every other field so ``tenants=False``
    streams are untouched.

    ``geo=True`` re-shapes the campaign into a three-region stretch
    cluster: a geo-safe EC geometry (one region outage never exceeds the
    code's tolerance), hosts dealt across regions, and a region-aware
    fault schedule mixing whole-region outages, WAN partitions, and
    region-local host crashes.  Geo campaigns are read-only with
    scrubbing off so the cross-region-byte invariant is exact; the geo
    draws happen strictly after every other field so ``geo=False``
    streams stay byte-identical.

    ``byzantine=True`` re-arms the campaign with lying-OSD faults only:
    scrubbing is forced on (the data-plane lies are undetectable without
    it) and the schedule is replaced with pure Byzantine rounds — forged
    checksums, stale osdmap gossip, false write acks — so detection is
    always attributable to a defense, never to a coincident crash.  The
    byz draws happen strictly after every other field so
    ``byzantine=False`` streams stay byte-identical.  Exclusive with
    ``writes``/``tenants``/``geo``: containment must be judged on a
    read-only single-site cluster, where zero wrong reads is provable.

    ``cascade=True`` re-shapes the campaign for correlated-failure
    resilience: a rack-domain cluster with spare racks, a cascade-safe
    EC geometry (tolerance >= 2, so a whole-rack loss leaves aftershock
    budget), a sampled recovery priority (fifo or risk — both must
    survive the same cascades), risk-exposure tracking on, and a
    schedule of whole-rack correlated crashes followed by aftershock
    device failures inside the recovery window.  The cascade draws
    happen strictly after every other field so ``cascade=False``
    streams stay byte-identical.  Exclusive with every other axis: the
    no-avoidable-loss and priority-soundness invariants must be judged
    without racing writers or a second fault vocabulary.
    """
    if cascade and (writes or tenants or geo or byzantine):
        raise ValueError(
            "cascade campaigns are exclusive with writes/tenants/geo/"
            "byzantine: cascade invariants must be judged in isolation"
        )
    if tenants and writes:
        raise ValueError(
            "tenants and writes are exclusive: the fleet replaces the "
            "single client stream"
        )
    if geo and (writes or tenants):
        raise ValueError(
            "geo campaigns are read-only: exclusive with writes/tenants "
            "so the cross-region-byte invariant stays exact"
        )
    if byzantine and (writes or tenants or geo):
        raise ValueError(
            "byzantine campaigns are read-only and single-region: "
            "exclusive with writes/tenants/geo so containment is provable"
        )
    chosen = tuple(levels) if levels is not None else FAULT_LEVELS
    if not chosen:
        raise ValueError("levels must name at least one fault level")
    unknown = sorted(set(chosen) - set(FAULT_LEVELS))
    if unknown:
        raise ValueError(
            f"unknown fault levels {unknown}; allowed: {FAULT_LEVELS}"
        )

    rng = SeedSequence(seed).stream("chaos-sampler")

    plugin, params = rng.choice(_EC_CHOICES)
    n = _shard_count(params)
    tolerance = _tolerance(plugin, params)

    osds_per_host = rng.choice((1, 2, 2, 3))
    # Failure domain is host: need n distinct hosts for placement, plus
    # spare buckets so recovery can remap around `tolerance` dead hosts.
    num_hosts = n + tolerance + rng.randrange(1, 4)

    scrub_on = rng.random() < 0.5
    if set(chosen) == {"corrupt"}:
        # Corruption is the only level allowed: scrub must be on or no
        # campaign could ever schedule (or heal) anything.
        scrub_on = True
    scrub_interval = float(rng.choice((200, 400, 800))) if scrub_on else 0.0

    actions = _sample_schedule(rng, tolerance, osds_per_host, scrub_on, chosen)

    spec = CampaignSpec(
        seed=seed,
        ec_plugin=plugin,
        ec_params=params,
        pg_num=rng.choice((4, 8, 16)),
        stripe_unit=rng.choice(_STRIPE_UNITS),
        cache_scheme=rng.choice(sorted(CACHE_SCHEMES)),
        failure_domain="host",
        num_hosts=num_hosts,
        osds_per_host=osds_per_host,
        scrub_interval=scrub_interval,
        scrub_pgs_per_batch=rng.choice((2, 4)),
        mon_osd_down_out_interval=float(rng.choice((30, 60, 120))),
        num_objects=rng.randrange(8, 33),
        object_size=rng.choice(_OBJECT_SIZES),
        size_jitter=rng.choice((0.0, 0.0, 0.2)),
        actions=tuple(actions),
    )
    if writes:
        # Drawn strictly after every read-only field so the writes=False
        # stream is untouched.  The load outlives the last scheduled
        # action, so restores (and the recovery they trigger) race live
        # writes — the scenario delta recovery exists for.
        last_at = actions[-1].at if actions else 100.0
        spec = replace(
            spec,
            write_interval=float(rng.choice((1, 2, 4))),
            write_fraction=rng.choice((0.3, 0.5, 0.7)),
            rmw_fraction=rng.choice((0.0, 0.5, 1.0)),
            write_duration=last_at + float(rng.choice((50, 150))),
        )
    if tenants:
        # Drawn strictly after every other field (the writes draws never
        # run on a tenant campaign) so tenants=False streams stay
        # byte-identical.  The fleet outlives the last scheduled action,
        # so the fairness invariant judges SLO windows that straddle
        # injects, restores and the recovery they trigger.
        last_at = actions[-1].at if actions else 100.0
        fleet = TenantFleetSpec(
            tenants=(
                TenantSpec(
                    name="latency",
                    interval=float(rng.choice((1, 2))),
                    reservation=rng.choice((0.1, 0.2)),
                    weight=4.0,
                    slo=SloSpec(
                        p99_latency=rng.choice((0.25, 0.5)), window=60.0
                    ),
                ),
                TenantSpec(
                    name="batch",
                    interval=float(rng.choice((0.5, 1))),
                    arrival="poisson",
                    write_fraction=rng.choice((0.3, 0.5)),
                    rmw_fraction=rng.choice((0.0, 0.5)),
                    weight=1.0,
                    limit=rng.choice((0.0, 0.25)),
                ),
                TenantSpec(
                    name="scan",
                    interval=float(rng.choice((2, 4))),
                    arrival="poisson",
                    weight=2.0,
                ),
            ),
            qos_enabled=True,
        )
        spec = replace(
            spec,
            tenant_fleet=fleet,
            tenant_duration=last_at + float(rng.choice((50, 150))),
        )
    if geo:
        # Drawn strictly after every existing field so geo=False streams
        # are untouched.  The stretch shape replaces the sampled EC
        # geometry, cluster size, scrub setting and schedule wholesale:
        # geo-safety (cap <= tolerance) is a property of the EC choice
        # and region count together, not something the generic draws
        # can be patched into.
        plugin, params = rng.choice(_GEO_EC_CHOICES)
        n = _shard_count(params)
        cap = -(-n // _GEO_REGIONS)  # ceil
        hosts_per_region = cap + rng.randrange(1, 3)
        spec = replace(
            spec,
            ec_plugin=plugin,
            ec_params=params,
            num_hosts=_GEO_REGIONS * hosts_per_region,
            num_regions=_GEO_REGIONS,
            scrub_interval=0.0,
            wan_latency=rng.choice((0.01, 0.03, 0.08)),
            wan_egress_bandwidth=rng.choice((2.5e8, 6.25e8, 1.25e9)),
            actions=tuple(_sample_geo_schedule(rng)),
        )
    if byzantine:
        # Drawn strictly after every existing field so byzantine=False
        # streams are untouched.  Scrub is forced on (deep-scrub EC
        # cross-checks are the only defense that can expose a forged
        # checksum) and the schedule is replaced wholesale with pure
        # Byzantine rounds: mixing in crashes would let a lie be
        # "detected" by the crash recovery path instead of the defense
        # under test.
        spec = replace(
            spec,
            scrub_interval=float(rng.choice((200, 400, 800))),
            actions=tuple(_sample_byz_schedule(rng, tolerance, chosen)),
        )
    if cascade:
        # Drawn strictly after every existing field so cascade=False
        # streams are untouched.  The rack-domain shape replaces the
        # sampled EC geometry, cluster size and schedule wholesale:
        # cascade-safety (rack loss costs one slot, tolerance >= 2
        # leaves aftershock budget) is a property of the EC choice and
        # rack count together, not something the generic draws can be
        # patched into.
        plugin, params = rng.choice(_CASCADE_EC_CHOICES)
        n = _shard_count(params)
        tolerance = _tolerance(plugin, params)
        # n racks for placement plus spares: recovery can remap around a
        # dead rack, and stripes that skip the crashed rack give the
        # aftershocks mixed redundancy margins to prioritize.
        num_racks = n + tolerance + rng.randrange(0, 2)
        spec = replace(
            spec,
            ec_plugin=plugin,
            ec_params=params,
            failure_domain="rack",
            num_hosts=num_racks * rng.choice((1, 2)),
            osds_per_host=rng.choice((1, 2)),
            num_racks=num_racks,
            recovery_priority=rng.choice(("fifo", "risk")),
            track_risk_exposure=True,
            actions=tuple(_sample_cascade_schedule(rng, tolerance)),
        )
    return spec


def _sample_schedule(
    rng,
    tolerance: int,
    osds_per_host: int,
    scrub_on: bool,
    levels: Tuple[str, ...],
) -> List[ScheduledAction]:
    """A budget-tracked schedule of fault rounds.

    Each round either crashes OSDs/hosts (total failure-domain buckets
    within the tolerance budget), silently corrupts chunks (only when
    scrubbing is on to detect them), or degrades grayly (slow devices,
    lossy/partitioned NICs, flapping daemons), then restores, so every
    campaign is *expected* to converge back to HEALTH_OK.  Gray faults
    that can make an OSD unavailable (net_degrade, flap) consume a
    tolerance slot exactly like a crash, mirroring the injector's
    white-box guard; slow_device is budget-free.  Restore timing
    straddles the down->out interval on purpose: some rounds restore
    before the monitor reacts, some mid-recovery, some after.
    """
    crash_levels = [level for level in ("node", "device") if level in levels]
    gray_levels = [level for level in GRAY_LEVELS if level in levels]
    corrupt_ok = scrub_on and "corrupt" in levels
    # With crash/corrupt rounds available, gray is a sometimes-prelude;
    # restricted to gray-only levels it is the whole campaign.
    gray_chance = 0.4 if crash_levels or corrupt_ok else 1.0
    # When corruption is the only non-gray level, make every eligible
    # round corrupt (a 30% roll would leave most campaigns empty).
    corrupt_chance = 0.3 if crash_levels else 1.0

    actions: List[ScheduledAction] = []
    t = 100.0
    # Corrupt chunks stay damaged until a deep scrub repairs them, at a
    # time the sampler cannot know - so once corruption is in flight,
    # every later crash round conservatively cedes that many tolerance
    # slots (matching the injector's crash-over-corruption guard).
    outstanding_corrupt = 0
    for _ in range(rng.randrange(1, 4)):
        crashed = False
        budget = tolerance - outstanding_corrupt
        if gray_levels and rng.random() < gray_chance:
            action, cost = _gray_action(rng, t, gray_levels, budget)
            if action is not None:
                actions.append(action)
                budget -= cost
                if cost:
                    # An unavailable-ish gray target counts as damage for
                    # the corruption guard, same as a crash.
                    crashed = True
                t += rng.choice((0.0, 5.0, 20.0))
        for _ in range(rng.randrange(1, 3)):
            if budget <= 0:
                break
            roll = rng.random()
            if corrupt_ok and not crashed and roll < corrupt_chance:
                # Corruption round: daemons stay up, scrub must find it.
                # Kept to crash-free rounds so the per-stripe white-box
                # guard (down shards + corrupt shards <= tolerance) holds
                # regardless of which stripe the injector picks.
                count = rng.randrange(1, min(budget, 2) + 1)
                actions.append(
                    ScheduledAction(
                        at=t,
                        kind="inject",
                        level="corrupt",
                        count=count,
                        corruption=rng.choice(
                            ("bit_rot", "torn_write", "misdirected_write")
                        ),
                    )
                )
                outstanding_corrupt += count
                break  # one corruption burst per round
            if not crash_levels:
                break
            if "node" in crash_levels and (
                "device" not in crash_levels or roll < 0.6 or budget < 2
            ):
                actions.append(
                    ScheduledAction(at=t, kind="inject", level="node", count=1)
                )
                budget -= 1
            else:
                same_host_ok = osds_per_host >= 2
                colocation = rng.choice(
                    ("any", "diff_hosts", "same_host")
                    if same_host_ok
                    else ("any", "diff_hosts")
                )
                if colocation == "same_host":
                    count = rng.randrange(2, min(osds_per_host, budget + 1) + 1)
                    cost = 1  # one host bucket, several devices
                else:
                    count = rng.randrange(1, budget + 1)
                    cost = count
                actions.append(
                    ScheduledAction(
                        at=t,
                        kind="inject",
                        level="device",
                        count=count,
                        colocation=colocation,
                    )
                )
                budget -= cost
            crashed = True
            t += rng.choice((0.0, 5.0, 20.0))
        # Restore before mark-down (<20 s grace), mid-checking, or well
        # after the down->out interval - each exercises a different arc.
        t += rng.choice((10.0, 50.0, 200.0, 500.0))
        actions.append(ScheduledAction(at=t, kind="restore"))
        t += rng.choice((150.0, 300.0, 600.0))
    return actions


def _sample_geo_schedule(rng) -> List[ScheduledAction]:
    """A region-aware fault schedule for a stretch campaign.

    One fault per round, each followed by a restore: a whole-region
    outage (damage = the per-region shard cap, within tolerance by EC
    choice), a WAN partition (the region stays up but unreachable), or
    a region-local host crash (damage 1 — the round that actually
    drives cross-region repair traffic, since recovery must pull
    helpers from other regions when the home region cannot field ``k``).
    Restore timing straddles the down->out interval exactly like the
    generic schedule.
    """
    actions: List[ScheduledAction] = []
    t = 100.0
    for _ in range(rng.randrange(1, 4)):
        level = rng.choice(("region_outage", "wan_partition", "node", "node"))
        actions.append(
            ScheduledAction(at=t, kind="inject", level=level, count=1)
        )
        t += rng.choice((10.0, 50.0, 200.0, 500.0))
        actions.append(ScheduledAction(at=t, kind="restore"))
        t += rng.choice((150.0, 300.0, 600.0))
    return actions


def _sample_cascade_schedule(rng, tolerance: int) -> List[ScheduledAction]:
    """A budget-tracked schedule of correlated-crash cascades.

    Each round opens with a whole-rack correlated crash (one tolerance
    slot — rack-domain placement caps any stripe at one shard per rack)
    and then spends the remaining budget on *aftershocks*: single-device
    crashes landing inside the recovery window, the follow-on failures
    that push already-degraded stripes toward their redundancy floor.
    The injector's white-box guard still bounds every step, so injected
    faults alone can never exceed the code's tolerance; restore timing
    straddles the down->out interval exactly like the generic schedule.
    """
    actions: List[ScheduledAction] = []
    t = 100.0
    for _ in range(rng.randrange(1, 3)):
        actions.append(
            ScheduledAction(
                at=t,
                kind="inject",
                level="correlated_crash",
                count=1,
                domain="rack",
            )
        )
        for _ in range(rng.randrange(0, tolerance)):
            t += rng.choice((5.0, 20.0, 60.0))
            actions.append(
                ScheduledAction(at=t, kind="inject", level="device", count=1)
            )
        t += rng.choice((50.0, 200.0, 500.0))
        actions.append(ScheduledAction(at=t, kind="restore"))
        t += rng.choice((150.0, 300.0, 600.0))
    return actions


def cascade_scenario(seed: int, recovery_priority: str = "risk") -> CampaignSpec:
    """The canonical rack-loss + aftershock scenario, fixed shape.

    Shared by ``ecfault cascade`` and the cascade-recovery benchmark so
    both always speak about the same cluster: jerasure(4,2) over 8
    single-host racks (two OSDs each), rack failure domain, 16 PGs.  At
    t=100 one whole rack dies as a correlated crash; at t=130 — inside
    the recovery window, before the monitor marks the rack out — an
    aftershock takes a device in a surviving rack, driving some stripes
    to their redundancy floor (margin 0) while others keep margin 1.
    Only ``recovery_priority`` varies, so a fifo/risk pair of runs is a
    controlled experiment on servicing order alone.
    """
    actions = (
        ScheduledAction(
            at=100.0,
            kind="inject",
            level="correlated_crash",
            count=1,
            domain="rack",
        ),
        ScheduledAction(at=130.0, kind="inject", level="device", count=1),
        ScheduledAction(at=1500.0, kind="restore"),
    )
    return CampaignSpec(
        seed=seed,
        ec_plugin="jerasure",
        ec_params=(("k", 4), ("m", 2)),
        pg_num=16,
        stripe_unit=256 * KB,
        cache_scheme="autotune",
        failure_domain="rack",
        num_hosts=8,
        osds_per_host=2,
        num_racks=8,
        mon_osd_down_out_interval=60.0,
        num_objects=24,
        object_size=1 * MB,
        recovery_priority=recovery_priority,
        track_risk_exposure=True,
        actions=actions,
    )


def _sample_byz_schedule(
    rng, tolerance: int, levels: Tuple[str, ...]
) -> List[ScheduledAction]:
    """A budget-tracked schedule of pure Byzantine rounds.

    Lying shards count against the code's guaranteed tolerance exactly
    like crashed ones (the injector's white-box guard), so the budget
    accounting mirrors :func:`_sample_schedule`'s corruption rule:
    data-plane lies (forged checksums, false acks) stay damaged until a
    scrub at a time the sampler cannot know, so each cedes its slots to
    every later round.  Stale-map gossip costs a slot only while live —
    the restore's epoch sweep (or the next delivered heartbeat) ends it.
    No crash levels are ever mixed in: every detection in a sampled byz
    campaign is attributable to a defense, not to ordinary recovery.
    """
    byz_levels = [level for level in BYZ_LEVELS if level in levels]
    if not byz_levels:
        byz_levels = list(BYZ_LEVELS)
    actions: List[ScheduledAction] = []
    t = 100.0
    outstanding = 0
    for _ in range(rng.randrange(1, 4)):
        budget = tolerance - outstanding
        if budget <= 0:
            break
        level = rng.choice(byz_levels)
        if level == "byz_corrupt_data":
            count = rng.randrange(1, min(budget, 2) + 1)
            outstanding += count
        else:
            # One liar per round: a false ack damages one shard, a
            # stale-map gossiper lies about the map, not the data.
            count = 1
            if level == "byz_false_ack":
                outstanding += 1
        actions.append(
            ScheduledAction(at=t, kind="inject", level=level, count=count)
        )
        t += rng.choice((50.0, 200.0, 500.0))
        actions.append(ScheduledAction(at=t, kind="restore"))
        t += rng.choice((150.0, 300.0, 600.0))
    return actions


def _gray_action(
    rng, at: float, gray_levels: List[str], budget: int
) -> Tuple[Optional[ScheduledAction], int]:
    """One sampled gray inject plus its tolerance cost (0 = free).

    ``net_degrade`` and ``flap`` can render an OSD unavailable, so each
    costs one tolerance slot; when the budget is spent the sampler falls
    back to ``slow_device`` (which only degrades service) or skips the
    prelude entirely.
    """
    pick = rng.choice(gray_levels)
    if pick != "slow_device" and budget < 1:
        if "slow_device" not in gray_levels:
            return None, 0
        pick = "slow_device"
    if pick == "slow_device":
        action = ScheduledAction(
            at=at,
            kind="inject",
            level="slow_device",
            factor=float(rng.choice((4, 8, 16))),
        )
        return action, 0
    if pick == "net_degrade":
        if rng.random() < 0.25:
            return (
                ScheduledAction(
                    at=at, kind="inject", level="net_degrade", partition=True
                ),
                1,
            )
        return (
            ScheduledAction(
                at=at,
                kind="inject",
                level="net_degrade",
                loss=rng.choice((0.05, 0.2)),
                latency=rng.choice((0.0, 0.002)),
            ),
            1,
        )
    return (
        ScheduledAction(
            at=at,
            kind="inject",
            level="flap",
            flap_interval=float(rng.choice((15.0, 40.0))),
        ),
        1,
    )
