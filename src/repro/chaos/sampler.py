"""Random-but-valid campaign sampling.

Turns one integer seed into a :class:`~repro.chaos.campaign.CampaignSpec`
that is *valid by construction*: the EC parameters satisfy each plugin's
algebraic constraints (Clay's ``q | n``, LRC's ``l | k``, SHEC's window
bound), the cluster has enough failure-domain buckets to place ``n``
shards plus recovery headroom, and the fault schedule never requests
more concurrent damage than the code's guaranteed tolerance.  Rarely a
schedule can still collide with live cluster state (e.g. a corruption
round landing on a stripe that already carries unrepaired damage); the
engine classifies those as *invalid*, not failing.
"""

from __future__ import annotations

from typing import List, Tuple

from ..cluster.bluestore import CACHE_SCHEMES
from ..sim.rng import SeedSequence
from .campaign import CampaignSpec, ScheduledAction

__all__ = ["sample_campaign"]

KB = 1024
MB = 1024 * 1024

#: (plugin, params) choices.  Every entry satisfies its plugin's
#: constructor constraints; Clay entries additionally keep alpha = q^t
#: small enough for fast repair planning.
_EC_CHOICES: List[Tuple[str, Tuple[Tuple[str, int], ...]]] = [
    ("jerasure", (("k", 2), ("m", 1))),
    ("jerasure", (("k", 3), ("m", 2))),
    ("jerasure", (("k", 4), ("m", 2))),
    ("jerasure", (("k", 6), ("m", 3))),
    ("isa", (("k", 4), ("m", 2))),
    ("isa", (("k", 5), ("m", 3))),
    ("clay", (("d", 3), ("k", 2), ("m", 2))),
    ("clay", (("d", 5), ("k", 4), ("m", 2))),
    ("clay", (("d", 5), ("k", 3), ("m", 3))),
    ("lrc", (("k", 4), ("l", 2), ("r", 1))),
    ("lrc", (("k", 4), ("l", 2), ("r", 2))),
    ("lrc", (("k", 6), ("l", 3), ("r", 1))),
    ("shec", (("k", 4), ("l", 2), ("m", 3))),
    ("shec", (("k", 4), ("l", 2), ("m", 2))),
]

_STRIPE_UNITS = (64 * KB, 256 * KB, 1 * MB, 4 * MB)
_OBJECT_SIZES = (256 * KB, 1 * MB, 4 * MB)


def _shard_count(params: Tuple[Tuple[str, int], ...]) -> int:
    """n = data + parity shards for any of the sampled plugins."""
    values = dict(params)
    if "r" in values:  # LRC: n = k + l + r
        return values["k"] + values["l"] + values["r"]
    return values["k"] + values["m"]


def _tolerance(plugin: str, params: Tuple[Tuple[str, int], ...]) -> int:
    """Guaranteed fault tolerance, mirroring each plugin's contract."""
    values = dict(params)
    if plugin == "shec":
        return 1
    if plugin == "lrc":
        return values["r"] + 1 if values["r"] else 1
    return values["m"]


def sample_campaign(seed: int) -> CampaignSpec:
    """Sample one valid campaign; same seed, same campaign, always."""
    rng = SeedSequence(seed).stream("chaos-sampler")

    plugin, params = rng.choice(_EC_CHOICES)
    n = _shard_count(params)
    tolerance = _tolerance(plugin, params)

    osds_per_host = rng.choice((1, 2, 2, 3))
    # Failure domain is host: need n distinct hosts for placement, plus
    # spare buckets so recovery can remap around `tolerance` dead hosts.
    num_hosts = n + tolerance + rng.randrange(1, 4)

    scrub_on = rng.random() < 0.5
    scrub_interval = float(rng.choice((200, 400, 800))) if scrub_on else 0.0

    actions = _sample_schedule(rng, tolerance, osds_per_host, scrub_on)

    return CampaignSpec(
        seed=seed,
        ec_plugin=plugin,
        ec_params=params,
        pg_num=rng.choice((4, 8, 16)),
        stripe_unit=rng.choice(_STRIPE_UNITS),
        cache_scheme=rng.choice(sorted(CACHE_SCHEMES)),
        failure_domain="host",
        num_hosts=num_hosts,
        osds_per_host=osds_per_host,
        scrub_interval=scrub_interval,
        scrub_pgs_per_batch=rng.choice((2, 4)),
        mon_osd_down_out_interval=float(rng.choice((30, 60, 120))),
        num_objects=rng.randrange(8, 33),
        object_size=rng.choice(_OBJECT_SIZES),
        size_jitter=rng.choice((0.0, 0.0, 0.2)),
        actions=tuple(actions),
    )


def _sample_schedule(
    rng, tolerance: int, osds_per_host: int, scrub_on: bool
) -> List[ScheduledAction]:
    """A budget-tracked schedule of fault rounds.

    Each round either crashes OSDs/hosts (total failure-domain buckets
    within the tolerance budget) or silently corrupts chunks (only when
    scrubbing is on to detect them), then restores, so every campaign is
    *expected* to converge back to HEALTH_OK.  Restore timing straddles
    the down->out interval on purpose: some rounds restore before the
    monitor reacts, some mid-recovery, some after.
    """
    actions: List[ScheduledAction] = []
    t = 100.0
    # Corrupt chunks stay damaged until a deep scrub repairs them, at a
    # time the sampler cannot know - so once corruption is in flight,
    # every later crash round conservatively cedes that many tolerance
    # slots (matching the injector's crash-over-corruption guard).
    outstanding_corrupt = 0
    for _ in range(rng.randrange(1, 4)):
        crashed = False
        budget = tolerance - outstanding_corrupt
        for _ in range(rng.randrange(1, 3)):
            if budget <= 0:
                break
            roll = rng.random()
            if scrub_on and not crashed and roll < 0.3:
                # Corruption round: daemons stay up, scrub must find it.
                # Kept to crash-free rounds so the per-stripe white-box
                # guard (down shards + corrupt shards <= tolerance) holds
                # regardless of which stripe the injector picks.
                count = rng.randrange(1, min(budget, 2) + 1)
                actions.append(
                    ScheduledAction(
                        at=t,
                        kind="inject",
                        level="corrupt",
                        count=count,
                        corruption=rng.choice(
                            ("bit_rot", "torn_write", "misdirected_write")
                        ),
                    )
                )
                outstanding_corrupt += count
                break  # one corruption burst per round
            if roll < 0.6 or budget < 2:
                actions.append(
                    ScheduledAction(at=t, kind="inject", level="node", count=1)
                )
                budget -= 1
            else:
                same_host_ok = osds_per_host >= 2
                colocation = rng.choice(
                    ("any", "diff_hosts", "same_host")
                    if same_host_ok
                    else ("any", "diff_hosts")
                )
                if colocation == "same_host":
                    count = rng.randrange(2, min(osds_per_host, budget + 1) + 1)
                    cost = 1  # one host bucket, several devices
                else:
                    count = rng.randrange(1, budget + 1)
                    cost = count
                actions.append(
                    ScheduledAction(
                        at=t,
                        kind="inject",
                        level="device",
                        count=count,
                        colocation=colocation,
                    )
                )
                budget -= cost
            crashed = True
            t += rng.choice((0.0, 5.0, 20.0))
        # Restore before mark-down (<20 s grace), mid-checking, or well
        # after the down->out interval - each exercises a different arc.
        t += rng.choice((10.0, 50.0, 200.0, 500.0))
        actions.append(ScheduledAction(at=t, kind="restore"))
        t += rng.choice((150.0, 300.0, 600.0))
    return actions
