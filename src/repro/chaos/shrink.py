"""Delta-debugging shrink of a failing campaign's fault schedule.

Classic ddmin (Zeller & Hildebrandt) over the campaign's action list:
repeatedly try subsets and complements of the schedule, keeping any
smaller schedule that still triggers the *same* invariants, until the
schedule is 1-minimal — removing any single action makes the failure
disappear.  Campaigns that become invalid during shrinking (an action no
longer applicable without its predecessors) count as *passing*: the goal
is the smallest schedule that still fails the original way.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Set, Tuple, TypeVar

from .campaign import CampaignSpec, ScheduledAction

__all__ = ["ddmin", "shrink_campaign", "shrink_campaign_by"]

T = TypeVar("T")


def ddmin(items: Sequence[T], fails: Callable[[List[T]], bool]) -> List[T]:
    """Minimise ``items`` to a 1-minimal sublist that still fails.

    ``fails(candidate)`` must return True when the candidate still
    reproduces the failure.  The full input must fail, otherwise there
    is nothing to shrink.
    """
    items = list(items)
    if not fails(items):
        raise ValueError("ddmin: the unshrunk input does not fail")
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        subsets = [
            items[start : start + chunk] for start in range(0, len(items), chunk)
        ]
        reduced = False
        for index, subset in enumerate(subsets):
            if len(subset) < len(items) and fails(subset):
                items = subset
                granularity = 2
                reduced = True
                break
            complement = [
                item
                for other, subset_ in enumerate(subsets)
                for item in subset_
                if other != index
            ]
            if len(complement) < len(items) and fails(complement):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def shrink_campaign_by(
    spec: CampaignSpec,
    failing: Callable[["CampaignResult"], bool],
    extra_checks: Tuple = (),
) -> Tuple[CampaignSpec, "CampaignResult"]:
    """Shrink a campaign to a minimal schedule by a caller-supplied oracle.

    ``failing(result)`` judges whether one campaign run still reproduces
    the condition being minimised — the fuzzer, for instance, passes a
    predicate over the violations *it* cares about.  Campaigns that turn
    :class:`CampaignInvalid` while shrinking count as passing (the goal
    is the smallest schedule failing the original way, not a schedule
    that cannot run).  Returns the shrunk spec and its re-run result.
    """
    from .engine import CampaignInvalid, CampaignResult, run_campaign

    original = run_campaign(spec, extra_checks)
    if not failing(original):
        raise ValueError("shrink_campaign_by: campaign does not fail")

    def fails(actions: List[ScheduledAction]) -> bool:
        try:
            result = run_campaign(spec.with_actions(actions), extra_checks)
        except CampaignInvalid:
            return False
        return failing(result)

    minimal = ddmin(list(spec.actions), fails)
    shrunk = spec.with_actions(minimal)
    return shrunk, run_campaign(shrunk, extra_checks)


def shrink_campaign(
    spec: CampaignSpec,
    extra_checks: Tuple = (),
) -> Tuple[CampaignSpec, "CampaignResult"]:
    """Shrink a failing campaign to a minimal schedule that still fails.

    Returns the shrunk spec and its (re-run) result, whose outcome hash
    is what the repro artifact records.  The failure criterion is "any
    of the originally violated invariants fires again" — matched by
    invariant name, so the shrunk campaign reproduces the same *kind*
    of failure, not an unrelated one uncovered on the way down.
    """
    from .engine import run_campaign

    original = run_campaign(spec, extra_checks)
    if original.passed:
        raise ValueError("shrink_campaign: campaign does not fail")
    wanted: Set[str] = {violation.invariant for violation in original.violations}

    return shrink_campaign_by(
        spec,
        lambda result: any(v.invariant in wanted for v in result.violations),
        extra_checks,
    )
