"""The campaign engine: run one campaign, check invariants, hash the outcome.

Unlike :meth:`Coordinator.run`, which drives one fixed experiment cycle,
the chaos engine steps a campaign through the simulation *action by
action* — advance the clock to the next scheduled fault, apply it, run
the invariant suite, repeat — then lets the cluster settle and demands
convergence.  Everything observable about the end state is folded into a
SHA-256 *outcome hash*; replaying the same spec must reproduce the same
hash bit-for-bit (asserted by the replay CLI and tests).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cluster.ceph import OVERWRITE_LEDGER_KEYS, CephCluster
from ..cluster.client import ClientLoadGenerator, RadosClient
from ..cluster.health import HealthStatus, check_health
from ..cluster.recovery import CASCADE_STAT_KEYS, DELTA_STAT_KEYS, GEO_STAT_KEYS
from ..core.controller import Controller
from ..core.fault_injector import FaultInjector, FaultToleranceError
from ..sim.rng import substream_seed
from ..tenancy.accounting import fleet_reports
from ..tenancy.fleet import TenantFleet
from .campaign import CampaignSpec
from .invariants import InvariantSuite, InvariantViolation, check_tenant_fairness
from .sampler import sample_campaign

__all__ = [
    "CampaignInvalid",
    "CampaignResult",
    "ChaosReport",
    "campaign_seed",
    "run_campaign",
    "run_chaos",
]

#: Sim-seconds between settle-phase polls of the convergence predicate.
SETTLE_POLL = 25.0


class CampaignInvalid(RuntimeError):
    """The schedule collided with live cluster state (not a failure).

    The sampler is valid-by-construction for everything it can see, but
    a few constraints depend on runtime state it cannot know — e.g. a
    corruption round landing on a stripe that still carries unrepaired
    damage from an earlier round.  Those campaigns are skipped (and
    counted), never reported as invariant violations.
    """


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    outcome_hash: str
    violations: List[InvariantViolation]
    digest: Dict[str, Any]
    finished_at: float
    steps: int

    @property
    def passed(self) -> bool:
        return not self.violations


def run_campaign(
    spec: CampaignSpec, extra_checks: Tuple = ()
) -> CampaignResult:
    """Execute one campaign start-to-finish and return its result.

    Deterministic: the same spec always yields the same outcome hash.
    Raises :class:`CampaignInvalid` when the schedule cannot be applied.
    """
    controller = Controller(spec.to_profile(), seed=spec.seed)
    env = controller.env
    cluster = controller.cluster
    injector = controller.fault_injector
    suite = InvariantSuite(cluster, extra_checks=tuple(extra_checks))

    controller.coordinator.ingest_workload(spec.to_workload())

    # Write-enabled campaigns run a mixed read-write client load through
    # the whole fault schedule, so restores race live degraded writes —
    # the arc the pg_log delta-recovery invariants exercise.  Read-only
    # campaigns (write_interval == 0) construct none of this and stay
    # byte-identical to the pre-write-path model.
    load = None
    load_proc = None
    if spec.write_interval > 0:
        client = RadosClient(cluster, seeds=controller.seeds)
        load = ClientLoadGenerator(
            client,
            interval=spec.write_interval,
            seeds=controller.seeds,
            write_fraction=spec.write_fraction,
            rmw_fraction=spec.rmw_fraction,
        )
        load_proc = load.run_for(spec.write_duration)

    # Tenant campaigns replace the single stream with a QoS-arbitrated
    # fleet and arm the fairness oracle: after settle, no reservation may
    # be starved and every SLO violation must be attributable to the
    # faulty portion of the run.
    fleet = None
    fleet_proc = None
    if spec.tenant_fleet is not None:
        fleet = TenantFleet(cluster, spec.tenant_fleet, seeds=controller.seeds)
        fleet_proc = fleet.run_for(spec.tenant_duration)
        first_inject = next(
            (action.at for action in spec.actions if action.kind == "inject"),
            None,
        )
        suite.extra_final_checks = (
            lambda c: check_tenant_fairness(c, fleet, first_inject),
        )

    step = 0
    suite.check_step(step)

    for action in spec.actions:
        if action.at > env.now:
            env.run(until=action.at)
        if action.kind == "inject":
            try:
                injector.inject(action.fault_spec())
            except (FaultToleranceError, ValueError) as exc:
                raise CampaignInvalid(
                    f"action at t={action.at:g} not applicable: {exc}"
                ) from exc
        else:
            injector.restore_all()
        step += 1
        suite.check_step(step)

    if load_proc is not None:
        # Drain the client load (retries may outlive the fault window)
        # before judging convergence.
        env.run_until_process(load_proc)
    if fleet_proc is not None:
        env.run_until_process(fleet_proc)

    # Settle: poll until the cluster converges (or provably cannot, or
    # the budget runs out - the final check then reports the stall).
    deadline = env.now + spec.settle_time
    while env.now < deadline:
        # A flap-dampening pin holds its OSD down past the restore; its
        # expiry is a known, bounded future event, so the settle clock
        # restarts there instead of charging the pin against the budget.
        pins = cluster.monitor.active_pins()
        if pins:
            deadline = max(deadline, max(pins.values()) + spec.settle_time)
        env.run(until=min(env.now + SETTLE_POLL, deadline))
        step += 1
        suite.check_step(step)
        if _quiescent(cluster):
            break
        if _stalled(cluster, injector):
            break

    step += 1
    suite.check_final(step)

    digest = outcome_digest(cluster, load=load, fleet=fleet)
    return CampaignResult(
        spec=spec,
        outcome_hash=hash_digest(digest),
        violations=list(suite.violations),
        digest=digest,
        finished_at=env.now,
        steps=step,
    )


def _quiescent(cluster: CephCluster) -> bool:
    """Converged: every fault healed and health back to HEALTH_OK."""
    if not all(osd.is_up() for osd in cluster.osds.values()):
        return False
    if cluster.monitor.out_osds:
        return False
    # A flap-dampening pin holds its OSD monitor-down even though the
    # daemon itself is healthy again; converged means the pin expired
    # and the OSD was marked back up.
    if cluster.monitor.active_pins():
        return False
    if not cluster.recovery.idle:
        return False
    if cluster.scrub.config.enabled and not cluster.scrub.quiescent():
        return False
    # Byzantine lies outstanding (a stale-map gossip not yet rejected,
    # or a data-plane lie scrub has not exposed) mean the run has not
    # converged — keep settling until every lie is detected.
    byz = getattr(cluster, "byzantine", None)
    if byz is not None and not byz.quiescent():
        return False
    # Staleness with no down->up trigger (an OSD back within heartbeat
    # grace never looked down to the monitor) is caught here: kick delta
    # recovery for any dirty pg_log before judging health.
    if cluster.recovery.kick_stale():
        return False
    return check_health(cluster).status == HealthStatus.OK


def _stalled(cluster: CephCluster, injector: FaultInjector) -> bool:
    """Nothing further can change: un-restored faults fully processed.

    A shrunk schedule may legitimately end with faults still injected
    (ddmin dropped the restore); once every victim is marked out,
    recovery has drained and scrub is quiet, polling further only burns
    the settle budget - bail out and let the final check report it.
    """
    injected = injector.injected_osds
    if not injected:
        return False
    if not all(cluster.monitor.is_out(osd_id) for osd_id in injected):
        return False
    if not cluster.recovery.idle:
        return False
    if cluster.scrub.config.enabled and not cluster.scrub.quiescent():
        return False
    return True


# -- the outcome hash (the replay contract) -----------------------------------


def _prune_zero(payload: Dict[str, Any], keys) -> Dict[str, Any]:
    """Drop keys whose value is exactly 0 (write-path counter pruning).

    The write path added counters to stats that predate it; pruning them
    at zero keeps read-only outcome digests byte-identical to the
    pre-write-path model while write-enabled runs see every counter.
    """
    for key in keys:
        if payload.get(key) == 0:
            del payload[key]
    return payload


def outcome_digest(
    cluster: CephCluster,
    load: Optional[ClientLoadGenerator] = None,
    fleet: Optional[TenantFleet] = None,
) -> Dict[str, Any]:
    """Canonical, JSON-serialisable snapshot of everything observable."""
    health = check_health(cluster)
    digest = {
        "sim_now": cluster.env.now,
        "sim_steps": cluster.env.steps,
        "health": {"status": health.status, "checks": list(health.checks)},
        "osds": {
            osd.name: {
                "up": osd.is_up(),
                "used_bytes": osd.used_bytes,
                "num_chunks": osd.backend.num_chunks,
            }
            for osd in cluster.osds.values()
        },
        "recovery": _prune_zero(
            asdict(cluster.recovery.stats),
            DELTA_STAT_KEYS + GEO_STAT_KEYS + CASCADE_STAT_KEYS,
        ),
        "scrub": asdict(cluster.scrub.stats),
        "monitor": {
            "markdowns": cluster.monitor.markdowns_total,
            "pins": cluster.monitor.pins_total,
            "active_pins": sorted(cluster.monitor.active_pins()),
        },
        "ledger": _prune_zero(asdict(cluster.ledger), OVERWRITE_LEDGER_KEYS),
        "corrupt_chunks": cluster.integrity.corrupted_chunk_count(),
        "logs": [
            [
                record.time,
                record.node,
                record.subsystem,
                record.message,
                [[key, value] for key, value in record.fields],
            ]
            for log in cluster.all_logs()
            for record in log.records
        ],
    }
    if getattr(cluster, "byzantine", None) is not None:
        # Present only when a Byzantine fault was actually injected, so
        # every pre-existing (honest) digest stays byte-identical.
        digest["byzantine"] = cluster.byzantine.digest_section()
    wan = cluster.topology.wan
    if wan is not None:
        # Only stretch clusters carry this section: single-region runs
        # never construct a WanFabric, so their digests are untouched.
        digest["wan"] = {
            "cross_region_transfers": wan.cross_region_transfers,
            "cross_region_bytes": wan.cross_region_bytes,
            "wan_partition_refusals": wan.wan_partition_refusals,
            "uplinks": [
                [up.egress_bytes, up.ingress_bytes] for up in wan.uplinks
            ],
            "egress_bytes_by_region": list(
                wan.ledger.egress_bytes_by_region
            ),
            "egress_cost": wan.ledger.total_cost,
        }
    if load is not None:
        writes = load.write_stats
        digest["writes"] = {
            "ok": len(writes.samples),
            "failed": writes.failures,
            "degraded": writes.degraded_count,
            "logical_bytes": writes.logical_bytes,
            "samples": [
                [s.object_name, s.issued_at, s.latency, s.kind, s.degraded,
                 s.bytes_written, s.attempts]
                for s in writes.samples
            ],
        }
    if fleet is not None:
        tenants: Dict[str, Any] = {}
        for name in sorted(fleet.tenants):
            runtime = fleet.tenants[name]
            reads = runtime.load.stats
            tenant_writes = runtime.load.write_stats
            entry: Dict[str, Any] = {
                "reads_ok": len(reads.samples),
                "read_failures": reads.failures,
                "samples": [
                    [s.object_name, s.issued_at, s.latency, s.degraded,
                     s.bytes_read, s.attempts, s.hedged]
                    for s in reads.samples
                ],
            }
            if tenant_writes.samples or tenant_writes.failures:
                entry["write_failures"] = tenant_writes.failures
                entry["write_samples"] = [
                    [s.object_name, s.issued_at, s.latency, s.kind, s.degraded,
                     s.bytes_written, s.attempts]
                    for s in tenant_writes.samples
                ]
            tenants[name] = entry
        for report in fleet_reports(fleet):
            tenants[report.name]["slo_violations"] = [
                list(window) for window in report.slo_violations
            ]
        digest["tenants"] = tenants
        digest["qos"] = fleet.qos_class_totals()
    return digest


def hash_digest(digest: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON form of an outcome digest."""
    payload = json.dumps(
        digest, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- bulk campaigns ------------------------------------------------------------


def campaign_seed(root_seed: int, index: int) -> int:
    """Per-campaign seed: an independent substream of the root seed."""
    return substream_seed(root_seed, f"campaign-{index}")


@dataclass
class ChaosReport:
    """Summary of one bulk chaos run."""

    root_seed: int
    campaigns: int = 0
    passed: int = 0
    invalid: int = 0
    failures: List[CampaignResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_chaos(
    root_seed: int,
    campaigns: int,
    extra_checks: Tuple = (),
    on_campaign=None,
    stop_on_failure: bool = False,
    levels: Optional[Tuple[str, ...]] = None,
    writes: bool = False,
    tenants: bool = False,
    geo: bool = False,
    byzantine: bool = False,
    cascade: bool = False,
) -> ChaosReport:
    """Sample and run ``campaigns`` campaigns derived from ``root_seed``.

    ``on_campaign(index, spec, result_or_none, error_or_none)`` is called
    after each campaign (result is None for invalid ones) — the CLI uses
    it for progress output, tests for introspection.  ``levels``
    restricts which fault levels the sampler may draw (the CI gray-chaos
    job sweeps only the gray ones).  ``writes=True`` makes the sampler
    add a mixed read-write client load to every campaign, exercising the
    degraded write path and pg_log delta recovery.  ``tenants=True``
    instead drives every campaign with a sampled QoS-enabled tenant
    fleet and arms the fairness invariant (exclusive with ``writes``).
    ``geo=True`` re-shapes every campaign into a three-region stretch
    cluster with a region-aware fault schedule, arming the
    cross-region-byte accounting invariant (exclusive with both).
    ``byzantine=True`` replaces every schedule with lying-OSD faults
    (forged checksums, stale osdmap gossip, false write acks) and arms
    the byzantine-containment invariant (exclusive with all three).
    ``cascade=True`` samples correlated-failure campaigns — a whole
    rack (or host bucket) lost in one event plus aftershock device
    failures during the recovery window, under risk-prioritized
    recovery with exposure tracking — arming the priority-soundness
    and no-avoidable-loss invariants (exclusive with all four).
    """
    report = ChaosReport(root_seed=root_seed)
    for index in range(campaigns):
        spec = sample_campaign(
            campaign_seed(root_seed, index),
            levels=levels,
            writes=writes,
            tenants=tenants,
            geo=geo,
            byzantine=byzantine,
            cascade=cascade,
        )
        report.campaigns += 1
        try:
            result: Optional[CampaignResult] = run_campaign(spec, extra_checks)
        except CampaignInvalid as exc:
            report.invalid += 1
            if on_campaign is not None:
                on_campaign(index, spec, None, exc)
            continue
        if result.passed:
            report.passed += 1
        else:
            report.failures.append(result)
        if on_campaign is not None:
            on_campaign(index, spec, result, None)
        if report.failures and stop_on_failure:
            break
    return report
