"""Coverage-guided adversarial fault fuzzing.

Where the chaos harness samples campaigns blindly, the adversary layer
*learns*: it keeps a corpus of interesting campaigns (novel coverage of
(fault-level x EC-plugin x PG-state) pairs, or record fitness along any
axis — repair bytes moved, health-convergence time, WAN egress,
invariant near-miss margins), mutates them with typed validity-preserving
operators, and routes every invariant violation through the ddmin
shrinker into a 1-minimal JSON repro artifact.  See docs/TESTING.md for
the fuzzer tier contract and ``ecfault fuzz`` for the CLI entry point.
"""

from .corpus import Corpus, CorpusEntry, load_corpus
from .fuzzer import (
    FITNESS_AXES,
    FuzzReport,
    MarginProbe,
    durability_margin,
    log_trim_margin,
    run_fuzz,
)
from .mutators import MUTATORS, mutate, press_capacity, splice

__all__ = [
    "Corpus",
    "CorpusEntry",
    "FITNESS_AXES",
    "FuzzReport",
    "MUTATORS",
    "MarginProbe",
    "durability_margin",
    "load_corpus",
    "log_trim_margin",
    "mutate",
    "press_capacity",
    "run_fuzz",
    "splice",
]
