"""The fuzzer's corpus: campaigns worth mutating again.

An entry earns its place by *novelty*: it reached a coverage pair no
earlier entry reached, or it set a new record on some fitness axis.
Everything is deterministic — same runs considered in the same order
produce the same corpus — and JSON-serialisable so a fuzz session can be
archived (and its summary asserted by the CLI contract tests).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Tuple

from ..chaos.campaign import CampaignSpec

__all__ = ["CorpusEntry", "Corpus", "load_corpus"]

#: One coverage point: (fault level, EC plugin, PG state observed).
CoveragePair = Tuple[str, str, str]


@dataclass(frozen=True)
class CorpusEntry:
    """One retained campaign with the scores that earned retention."""

    spec: CampaignSpec
    fitness: Dict[str, float]
    coverage: FrozenSet[CoveragePair]
    #: Where the entry came from: ``seed-<i>`` or ``mutant-<i>``.
    lineage: str
    outcome_hash: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "fitness": dict(self.fitness),
            "coverage": sorted(list(pair) for pair in self.coverage),
            "lineage": self.lineage,
            "outcome_hash": self.outcome_hash,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusEntry":
        return cls(
            spec=CampaignSpec.from_dict(data["spec"]),
            fitness=dict(data["fitness"]),
            coverage=frozenset(tuple(pair) for pair in data["coverage"]),
            lineage=data["lineage"],
            outcome_hash=data["outcome_hash"],
        )


@dataclass
class Corpus:
    """Novelty-retaining set of campaigns, plus the global records."""

    entries: List[CorpusEntry] = field(default_factory=list)
    seen_coverage: set = field(default_factory=set)
    best_fitness: Dict[str, float] = field(default_factory=dict)
    considered: int = 0

    def consider(self, entry: CorpusEntry) -> bool:
        """Admit the entry iff it is novel; update records either way.

        Novel means: at least one coverage pair never seen before, or a
        strictly higher value on at least one fitness axis.  The records
        are updated *after* the judgement so two identical record-setters
        do not both enter.
        """
        self.considered += 1
        new_pairs = entry.coverage - self.seen_coverage
        new_records = [
            axis
            for axis, value in entry.fitness.items()
            if value > self.best_fitness.get(axis, float("-inf"))
        ]
        keep = bool(new_pairs) or bool(new_records)
        self.seen_coverage |= entry.coverage
        for axis, value in entry.fitness.items():
            if value > self.best_fitness.get(axis, float("-inf")):
                self.best_fitness[axis] = value
        if keep:
            self.entries.append(entry)
        return keep

    def summary(self) -> Dict[str, Any]:
        """The JSON summary the ``ecfault fuzz`` contract promises."""
        return {
            "entries": len(self.entries),
            "considered": self.considered,
            "coverage_pairs": len(self.seen_coverage),
            "coverage": sorted(list(pair) for pair in self.seen_coverage),
            "best_fitness": {
                axis: self.best_fitness[axis]
                for axis in sorted(self.best_fitness)
            },
            "lineages": [entry.lineage for entry in self.entries],
        }

    def save(self, corpus_dir) -> List[Path]:
        """Write every entry (and the summary) as JSON under corpus_dir."""
        corpus_dir = Path(corpus_dir)
        corpus_dir.mkdir(parents=True, exist_ok=True)
        paths = []
        for index, entry in enumerate(self.entries):
            path = corpus_dir / f"corpus-{index:04d}.json"
            path.write_text(
                json.dumps(entry.to_dict(), indent=2, sort_keys=True) + "\n"
            )
            paths.append(path)
        summary_path = corpus_dir / "summary.json"
        summary_path.write_text(
            json.dumps(self.summary(), indent=2, sort_keys=True) + "\n"
        )
        paths.append(summary_path)
        return paths


def load_corpus(corpus_dir) -> Corpus:
    """Rebuild a corpus from a directory :meth:`Corpus.save` wrote.

    Entries replay through :meth:`Corpus.consider` in their saved order.
    Every archived entry was admitted when it was first considered, and
    rejected entries contributed no retained state, so the replay ends
    with exactly the coverage set and fitness records the saving session
    had — the property the ``--corpus-in`` determinism contract rests on
    (``considered`` restarts at the admitted count, which is all the
    saved session's survivors).
    """
    corpus_dir = Path(corpus_dir)
    corpus = Corpus()
    for path in sorted(corpus_dir.glob("corpus-*.json")):
        entry = CorpusEntry.from_dict(json.loads(path.read_text()))
        corpus.consider(entry)
    return corpus
