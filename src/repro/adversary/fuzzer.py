"""Coverage/fitness-guided campaign fuzzing over the chaos engine.

One fuzz session = ``budget`` campaign runs.  The first slice seeds the
corpus with blind samples (the same distribution ``ecfault chaos``
draws); the rest mutate retained corpus entries with the typed operators
in :mod:`repro.adversary.mutators`.  A run earns corpus retention by
reaching a novel (fault-level x EC-plugin x PG-state) coverage pair or
by setting a fitness record; invariant violations are shrunk with ddmin
and emitted as 1-minimal JSON repro artifacts.

Everything is derived deterministically from ``root_seed``: same seed,
same budget, same corpus, same artifacts, always.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..chaos.artifact import ReproArtifact, save_artifact
from ..chaos.campaign import CampaignSpec
from ..chaos.engine import CampaignInvalid, CampaignResult, run_campaign
from ..chaos.sampler import _EC_CHOICES, sample_campaign
from ..chaos.shrink import shrink_campaign
from ..sim.rng import SeedSequence, substream_seed
from .corpus import Corpus, CorpusEntry, load_corpus
from .mutators import (
    allowed_levels,
    duplicate_action,
    escalate_action,
    fault_round,
    mutate,
    press_data,
    reshape_to,
)

__all__ = [
    "FITNESS_AXES",
    "FuzzReport",
    "MarginProbe",
    "durability_margin",
    "log_trim_margin",
    "run_fuzz",
]

#: The fitness vector's axes; every run scores all of them.
FITNESS_AXES = (
    "repair_bytes",
    "convergence_time",
    "wan_egress",
    "durability_near_miss",
    "log_trim_near_miss",
)

#: Fraction of the budget spent seeding the corpus with blind samples.
SEED_FRACTION = 0.25


# -- near-miss margins ----------------------------------------------------------


def durability_margin(cluster) -> float:
    """Surviving-tolerance margin: how many more shards could die.

    The minimum over populated objects of ``tolerance - |damage|``,
    where damage unions crash-down, corrupt, stale, and byzantine
    shards — the same union the durability invariant judges.  Equals the
    full tolerance on an undamaged cluster; zero exactly at the
    invariant boundary (one more lost shard is a violation).
    """
    code = cluster.pool.code
    tolerance = float(code.fault_tolerance())
    margin = tolerance
    byz = getattr(cluster, "byzantine", None)
    for pg in cluster.pool.pgs.values():
        if not pg.objects:
            continue
        down = {
            shard
            for shard, osd_id in enumerate(pg.acting)
            if not cluster.osds[osd_id].is_up()
        }
        for obj in pg.objects:
            corrupt = cluster.integrity.corrupt_shards(pg.pgid, obj.name)
            stale = (
                pg.log.stale_shards(obj.name) if pg.log is not None else set()
            )
            lied = byz.damaged_shards(pg.pgid, obj.name) if byz else set()
            damage = len(down | corrupt | stale | lied)
            margin = min(margin, tolerance - damage)
    return margin


def log_trim_margin(cluster) -> Optional[float]:
    """Distance to the pg_log divergence floor, or None when no divergence.

    While a shard's divergence pins the log, entries accumulate toward
    ``hard_limit``; at zero margin the next trim drops past the floor
    and delta recovery degrades to a full backfill.  Only PGs with an
    *active* divergence floor count — an unpinned log trims freely and
    has no boundary to approach.
    """
    margin: Optional[float] = None
    for pg in cluster.pool.pgs.values():
        log = pg.log
        if log is None or log.divergence_floor() is None:
            continue
        room = float(log.hard_limit - len(log.entries))
        margin = room if margin is None else min(margin, room)
    return margin


class MarginProbe:
    """A step-wise observer rode through a campaign as an extra check.

    Shaped like an invariant checker (``cluster -> [violations]``) but
    never emits violations — it records the minima of the near-miss
    margins and the set of PG states the campaign visited, which become
    the run's fitness and coverage after the engine returns.
    """

    def __init__(self) -> None:
        self.tolerance: Optional[float] = None
        self.min_durability_margin: Optional[float] = None
        self.min_log_trim_margin: Optional[float] = None
        self.log_hard_limit: Optional[float] = None
        self.pg_states_seen: Set[str] = set()

    def __call__(self, cluster) -> list:
        if self.tolerance is None:
            self.tolerance = float(cluster.pool.code.fault_tolerance())
        margin = durability_margin(cluster)
        if (self.min_durability_margin is None
                or margin < self.min_durability_margin):
            self.min_durability_margin = margin
        trim = log_trim_margin(cluster)
        if trim is not None:
            if self.log_hard_limit is None:
                self.log_hard_limit = float(max(
                    pg.log.hard_limit
                    for pg in cluster.pool.pgs.values()
                    if pg.log is not None
                ))
            if (self.min_log_trim_margin is None
                    or trim < self.min_log_trim_margin):
                self.min_log_trim_margin = trim
        self.pg_states_seen.update(cluster.scrub.pg_states.values())
        if not cluster.recovery.idle:
            self.pg_states_seen.add("recovering")
        return []

    def fitness_margins(self) -> Dict[str, float]:
        """The near-miss components of the fitness vector (higher = closer)."""
        near_durability = 0.0
        if self.tolerance is not None and self.min_durability_margin is not None:
            near_durability = self.tolerance - self.min_durability_margin
        near_trim = 0.0
        if (self.log_hard_limit is not None
                and self.min_log_trim_margin is not None):
            near_trim = self.log_hard_limit - self.min_log_trim_margin
        return {
            "durability_near_miss": near_durability,
            "log_trim_near_miss": near_trim,
        }


# -- scoring --------------------------------------------------------------------


def score_run(spec: CampaignSpec, result: CampaignResult,
              probe: MarginProbe) -> Tuple[Dict[str, float], frozenset]:
    """The (fitness vector, coverage pairs) one campaign run produced."""
    recovery = result.digest.get("recovery", {})
    scrub = result.digest.get("scrub", {})
    repair_bytes = float(
        recovery.get("bytes_read", 0)
        + recovery.get("bytes_written", 0)
        + recovery.get("delta_bytes_read", 0)
        + recovery.get("delta_bytes_written", 0)
        + scrub.get("repair_bytes_read", 0)
        + scrub.get("repair_bytes_written", 0)
    )
    wan = result.digest.get("wan", {})
    fitness = {
        "repair_bytes": repair_bytes,
        "convergence_time": float(result.finished_at),
        "wan_egress": float(wan.get("cross_region_bytes", 0)),
        **probe.fitness_margins(),
    }
    levels = {
        action.level for action in spec.actions if action.kind == "inject"
    }
    coverage = frozenset(
        (level, spec.ec_plugin, state)
        for level in levels
        for state in probe.pg_states_seen
    )
    return fitness, coverage


# -- the fuzz loop --------------------------------------------------------------


@dataclass
class FuzzReport:
    """Everything one fuzz session produced."""

    root_seed: int
    budget: int
    runs: int = 0
    invalid: int = 0
    mutants_rejected: int = 0
    corpus: Corpus = field(default_factory=Corpus)
    #: (spec, result) of every run that violated an invariant.
    failures: List[Tuple[CampaignSpec, CampaignResult]] = field(
        default_factory=list
    )
    #: Paths of shrunk repro artifacts written under the corpus dir.
    artifacts: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict[str, Any]:
        """The JSON document ``ecfault fuzz`` prints (the CLI contract)."""
        return {
            "root_seed": self.root_seed,
            "budget": self.budget,
            "runs": self.runs,
            "invalid": self.invalid,
            "mutants_rejected": self.mutants_rejected,
            "failures": len(self.failures),
            "artifacts": list(self.artifacts),
            "corpus": self.corpus.summary(),
        }


def run_fuzz(
    root_seed: int,
    budget: int,
    levels: Optional[Sequence[str]] = None,
    byzantine: bool = False,
    corpus_dir=None,
    corpus_in=None,
    on_run=None,
) -> FuzzReport:
    """One deterministic fuzz session of ``budget`` campaign runs.

    ``levels``/``byzantine`` shape the seed samples exactly as they do
    ``run_chaos``.  ``corpus_dir`` (optional) receives the retained
    corpus entries, the summary, and any shrunk repro artifacts.
    ``corpus_in`` (optional) pre-seeds the session's corpus from a
    directory a previous session saved: the archived entries replay
    through ``consider`` before the budget starts, so mutation rounds
    draw on the prior session's discoveries from run one, and novelty
    is judged against everything both sessions have seen.  Determinism
    extends across the reuse: same ``corpus_in`` + same seed + same
    budget, same session, always.
    ``on_run(index, kind, spec, result_or_none, error_or_none)`` mirrors
    the chaos progress callback (``kind`` is ``seed`` or ``mutant``).
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    report = FuzzReport(root_seed=root_seed, budget=budget)
    if corpus_in is not None:
        report.corpus = load_corpus(corpus_in)
    rng = SeedSequence(root_seed).stream("adversary-fuzzer")
    seed_runs = max(1, min(budget, round(budget * SEED_FRACTION)))

    for index in range(budget):
        kind = "seed" if index < seed_runs else "mutant"
        lineage = f"{kind}-{index}"
        if kind == "seed":
            spec = sample_campaign(
                substream_seed(root_seed, f"fuzz-seed-{index}"),
                levels=levels,
                byzantine=byzantine,
            )
        else:
            exploit = (index - seed_runs) % _EXPLOIT_CADENCE == (
                _EXPLOIT_CADENCE - 1
            )
            spec = _next_mutant(rng, report, exploit=exploit)
            if spec is None:
                # Mutators dried up (tiny corpus, every mutation
                # invalid): fall back to a fresh blind sample so the
                # budget is never silently under-spent.
                report.mutants_rejected += 1
                spec = sample_campaign(
                    substream_seed(root_seed, f"fuzz-reseed-{index}"),
                    levels=levels,
                    byzantine=byzantine,
                )
        probe = MarginProbe()
        report.runs += 1
        try:
            result = run_campaign(spec, extra_checks=(probe,))
        except CampaignInvalid as exc:
            report.invalid += 1
            if on_run is not None:
                on_run(index, kind, spec, None, exc)
            continue
        fitness, coverage = score_run(spec, result, probe)
        report.corpus.consider(
            CorpusEntry(
                spec=spec,
                fitness=fitness,
                coverage=coverage,
                lineage=lineage,
                outcome_hash=result.outcome_hash,
            )
        )
        if not result.passed:
            report.failures.append((spec, result))
            if corpus_dir is not None:
                path = _shrink_and_save(spec, result, corpus_dir,
                                        len(report.failures))
                if path is not None:
                    report.artifacts.append(str(path))
        if on_run is not None:
            on_run(index, kind, spec, result, None)

    if corpus_dir is not None:
        report.corpus.save(corpus_dir)
    return report


#: One in this many mutant rounds exploits the repair-bytes record
#: holder instead of exploring.  A fixed cadence, not a probability:
#: exploitation compounds (each retained record becomes the next
#: round's base), so a handful of evenly-spaced rounds buy the fitness
#: record while the rest of the budget keeps buying coverage.
_EXPLOIT_CADENCE = 5


def _exploit_repair_record(rng, report: "FuzzReport"):
    """Hill-climb the corpus's best repair-bytes campaign.

    Takes the current record holder and pushes the genes that axis
    feeds on: more and bigger objects (``press_data``), replayed
    injects (``duplicate_action`` — each replay is another full
    recovery round) and an escalated count (``escalate_action``).
    Each retained improvement becomes the next round's base, so
    repeated exploitation compounds.
    """
    best = max(
        report.corpus.entries,
        key=lambda entry: entry.fitness.get("repair_bytes", 0.0),
    )
    spec = best.spec
    mutated = press_data(rng, spec) or spec
    for operator in (duplicate_action, escalate_action, duplicate_action):
        candidate = operator(rng, mutated)
        if candidate is not None:
            mutated = candidate
    return None if mutated is spec else mutated


def _aim_at_coverage_gap(rng, spec: CampaignSpec,
                         seen) -> Optional[CampaignSpec]:
    """Steer a mutant toward the least-covered (plugin, level) cells.

    This is what makes the loop coverage-*guided* rather than merely
    coverage-*retaining*: retention only filters what random mutation
    happens to produce, aiming steers production toward plugins and
    fault levels the corpus has not paired yet.  Two directed steps,
    each skipped when inapplicable: reshape the geometry to the plugin
    with the fewest covered pairs, then append a fault round at a level
    not yet paired with the resulting plugin.  Ties and the final
    choice inside a cell stay rng-driven, so aiming narrows the search
    without collapsing it.
    """
    plugin_counts: Dict[str, int] = {}
    for _level, plugin, _state in seen:
        plugin_counts[plugin] = plugin_counts.get(plugin, 0) + 1
    plugins = sorted({plugin for plugin, _params in _EC_CHOICES})
    target = min(plugins, key=lambda p: (plugin_counts.get(p, 0), p))
    reshaped = reshape_to(rng, spec, target)
    if reshaped is not None:
        spec = reshaped
    covered = {level for level, plugin, _s in seen if plugin == spec.ec_plugin}
    missing = [
        level for level in allowed_levels(spec) if level not in covered
    ]
    if missing:
        extended = fault_round(rng, spec, rng.choice(missing))
        if extended is not None:
            spec = extended
    return spec


def _next_mutant(rng, report: FuzzReport,
                 exploit: bool = False) -> Optional[CampaignSpec]:
    """Pick a corpus entry and mutate it 1-3 times; None when dried up.

    ``exploit`` rounds hill-climb the repair-bytes record holder;
    explore rounds mutate a random entry and then re-aim the mutant at
    the corpus's emptiest coverage cell.
    """
    if not report.corpus.entries:
        return None
    if exploit:
        exploited = _exploit_repair_record(rng, report)
        if exploited is not None:
            return exploited
    for _ in range(8):  # a few tries before declaring the round dry
        entry = rng.choice(report.corpus.entries)
        spec = entry.spec
        others = [e.spec for e in report.corpus.entries if e is not entry]
        mutated = None
        for _ in range(rng.randrange(1, 4)):
            candidate = mutate(rng, mutated or spec, others)
            if candidate is not None:
                mutated = candidate
        if mutated is not None:
            aimed = _aim_at_coverage_gap(
                rng, mutated, report.corpus.seen_coverage
            )
            if aimed is not None:
                mutated = aimed
            return mutated
    return None


def _shrink_and_save(spec: CampaignSpec, result: CampaignResult,
                     corpus_dir, index: int) -> Optional[Path]:
    """ddmin the failing schedule and write the 1-minimal repro artifact."""
    try:
        shrunk_spec, shrunk_result = shrink_campaign(spec)
    except ValueError:
        # The failure did not reproduce on re-run (should not happen —
        # campaigns are deterministic — but never lose the original).
        shrunk_spec, shrunk_result = spec, result
    artifact = ReproArtifact(
        spec=shrunk_spec,
        violations=shrunk_result.violations,
        outcome_hash=shrunk_result.outcome_hash,
        original_spec=spec,
    )
    return save_artifact(
        artifact, Path(corpus_dir) / f"repro-{spec.seed}-{index:02d}.json"
    )
