"""Typed, validity-preserving campaign mutators.

Each mutator has the shape ``(rng, spec) -> Optional[CampaignSpec]``: it
either returns a structurally-valid mutant or ``None`` (nothing to do,
or the mutation would break a spec-level rule).  Validity is enforced by
*reconstruction* — every mutant is rebuilt through the frozen dataclass
constructors, so ``CampaignSpec.__post_init__`` and
``ScheduledAction.__post_init__`` re-run and any rule violation surfaces
as ``ValueError`` (caught here, returned as ``None``).  Runtime-state
collisions the spec cannot see (e.g. corruption landing on an already
damaged stripe) still surface as ``CampaignInvalid`` when the mutant
runs; the fuzzer counts those, they are cheap.

Mutators never touch the campaign ``seed``: a mutant differs from its
parent only by the genes mutated, so lineage stays interpretable.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from ..chaos.campaign import CampaignSpec, ScheduledAction
from ..chaos.sampler import _EC_CHOICES, _shard_count, _tolerance
from ..core.fault_injector import BYZ_LEVELS

__all__ = [
    "MUTATORS",
    "allowed_levels",
    "fault_round",
    "mutate",
    "press_capacity",
    "press_data",
    "reshape_to",
    "splice",
]

_STRIPE_UNITS = (64 * 1024, 256 * 1024, 1024 * 1024, 4 * 1024 * 1024)
_OBJECT_SIZES = (256 * 1024, 1024 * 1024, 4 * 1024 * 1024)

#: Levels whose damage persists until a scrub heals it — the spec
#: forbids scheduling them with scrubbing off.
_NEEDS_SCRUB = ("corrupt", "byz_corrupt_data", "byz_false_ack")


def _rebuild(spec: CampaignSpec, actions: List[ScheduledAction],
             **config) -> Optional[CampaignSpec]:
    """Reconstruct a mutant through the validating constructors.

    Every mutant stays in the sampler's *expected-to-converge* family:
    a schedule ending on an un-restored inject would trip the
    health-convergence oracle trivially (no bug, just a dangling fault),
    so a trailing restore is appended whenever a mutation leaves one.
    """
    try:
        ordered = sorted(actions, key=lambda action: action.at)
        if ordered and ordered[-1].kind == "inject":
            ordered.append(
                ScheduledAction(at=ordered[-1].at + 200.0, kind="restore")
            )
        return replace(spec, actions=tuple(ordered), **config)
    except ValueError:
        return None


def _injects(spec: CampaignSpec) -> List[int]:
    return [
        index for index, action in enumerate(spec.actions)
        if action.kind == "inject"
    ]


def drop_action(rng, spec: CampaignSpec) -> Optional[CampaignSpec]:
    """Remove one action (ddmin's unit step, applied speculatively)."""
    if len(spec.actions) < 2:
        return None
    index = rng.randrange(len(spec.actions))
    actions = [a for i, a in enumerate(spec.actions) if i != index]
    return _rebuild(spec, actions)


def duplicate_action(rng, spec: CampaignSpec) -> Optional[CampaignSpec]:
    """Replay one inject later — repeated pressure on the same arc."""
    injects = _injects(spec)
    if not injects:
        return None
    action = spec.actions[rng.choice(injects)]
    last = spec.actions[-1].at if spec.actions else 100.0
    copy = replace(action, at=last + float(rng.choice((50, 150, 400))))
    return _rebuild(spec, [*spec.actions, copy])


def retime_action(rng, spec: CampaignSpec) -> Optional[CampaignSpec]:
    """Shift one action in time (races restores against detection)."""
    if not spec.actions:
        return None
    index = rng.randrange(len(spec.actions))
    action = spec.actions[index]
    shift = float(rng.choice((-200, -50, -10, 10, 50, 200)))
    try:
        moved = replace(action, at=max(0.0, action.at + shift))
    except ValueError:
        return None
    actions = list(spec.actions)
    actions[index] = moved
    return _rebuild(spec, actions)


def retarget_action(rng, spec: CampaignSpec) -> Optional[CampaignSpec]:
    """Change one inject's targeting genes (colocation, corruption mode)."""
    injects = _injects(spec)
    if not injects:
        return None
    index = rng.choice(injects)
    action = spec.actions[index]
    try:
        if action.level == "corrupt":
            mutated = replace(action, corruption=rng.choice(
                ("bit_rot", "torn_write", "misdirected_write")))
        elif action.level == "device":
            mutated = replace(action, colocation=rng.choice(
                ("any", "diff_hosts", "same_host")))
        elif action.level == "slow_device":
            mutated = replace(action, factor=float(rng.choice((4, 8, 16, 32))))
        elif action.level == "net_degrade":
            mutated = replace(action, loss=rng.choice((0.05, 0.2, 0.5)),
                              partition=rng.random() < 0.25)
        elif action.level == "flap":
            mutated = replace(action, flap_interval=float(
                rng.choice((15.0, 40.0, 90.0))))
        elif action.level in BYZ_LEVELS:
            # Escalate within the byz family: swap the lie being told.
            mutated = replace(action, level=rng.choice(BYZ_LEVELS), count=1)
        else:
            return None
    except ValueError:
        return None
    actions = list(spec.actions)
    actions[index] = mutated
    return _rebuild(spec, actions)


def escalate_action(rng, spec: CampaignSpec) -> Optional[CampaignSpec]:
    """Raise one inject's count by one, inside white-box tolerance.

    The bound is the *same* one the injector's guard enforces, so
    escalation probes the tolerance boundary without ever (statically)
    crossing it — the near-miss margins the fitness vector rewards.
    """
    tolerance = _tolerance(spec.ec_plugin, spec.ec_params)
    injects = [
        index for index in _injects(spec)
        if spec.actions[index].level in
        ("node", "device", "corrupt", "byz_corrupt_data")
    ]
    if not injects:
        return None
    index = rng.choice(injects)
    action = spec.actions[index]
    if action.count + 1 > tolerance:
        return None
    try:
        mutated = replace(action, count=action.count + 1)
    except ValueError:
        return None
    actions = list(spec.actions)
    actions[index] = mutated
    return _rebuild(spec, actions)


def perturb_config(rng, spec: CampaignSpec) -> Optional[CampaignSpec]:
    """Perturb one configuration axis, respecting cross-field rules."""
    axis = rng.choice((
        "pg_num", "stripe_unit", "scrub_interval",
        "mon_osd_down_out_interval", "num_objects", "object_size",
        "num_hosts",
    ))
    if axis == "pg_num":
        return _rebuild(spec, list(spec.actions),
                        pg_num=rng.choice((4, 8, 16, 32)))
    if axis == "stripe_unit":
        return _rebuild(spec, list(spec.actions),
                        stripe_unit=rng.choice(_STRIPE_UNITS))
    if axis == "scrub_interval":
        needs_scrub = any(
            action.kind == "inject" and action.level in _NEEDS_SCRUB
            for action in spec.actions
        )
        choices = (200.0, 400.0, 800.0) if needs_scrub \
            else (0.0, 200.0, 400.0, 800.0)
        return _rebuild(spec, list(spec.actions),
                        scrub_interval=float(rng.choice(choices)))
    if axis == "mon_osd_down_out_interval":
        return _rebuild(spec, list(spec.actions),
                        mon_osd_down_out_interval=float(
                            rng.choice((30, 60, 120, 300))))
    if axis == "num_objects":
        return _rebuild(spec, list(spec.actions),
                        num_objects=rng.randrange(8, 33))
    if axis == "object_size":
        return _rebuild(spec, list(spec.actions),
                        object_size=rng.choice(_OBJECT_SIZES))
    # num_hosts only grows: shrinking could leave too few failure-domain
    # buckets for placement, a rule the spec cannot check statically.
    return _rebuild(spec, list(spec.actions),
                    num_hosts=spec.num_hosts + rng.randrange(1, 3))


def press_data(rng, spec: CampaignSpec) -> Optional[CampaignSpec]:
    """Grow the data the schedule churns: more objects, bigger objects.

    Only ever moves upward (and stays inside the sampler's own ranges),
    so repeated application hill-climbs the repair-bytes fitness axis —
    every byte stored is a byte recovery and scrub can be made to move.
    """
    num_objects = min(32, spec.num_objects + int(rng.choice((4, 8, 12))))
    object_size = max(spec.object_size, rng.choice(_OBJECT_SIZES))
    if (num_objects == spec.num_objects
            and object_size == spec.object_size):
        return None
    return _rebuild(spec, list(spec.actions),
                    num_objects=num_objects, object_size=object_size)


def press_capacity(rng, spec: CampaignSpec) -> Optional[CampaignSpec]:
    """Jump the stored data straight to the sampler's ceiling.

    Where :func:`press_data` hill-climbs the repair-bytes axis in
    steps, this mutator maximizes both genes at once — most objects at
    the largest size — so backfill targets feel the most capacity
    pressure a sampled campaign can generate, aiming at the nearfull /
    backfillfull arcs of the capacity-backpressure machinery.
    """
    num_objects = 32
    object_size = max(_OBJECT_SIZES)
    if (num_objects == spec.num_objects
            and object_size == spec.object_size):
        return None
    return _rebuild(spec, list(spec.actions),
                    num_objects=num_objects, object_size=object_size)


def allowed_levels(spec: CampaignSpec) -> List[str]:
    """The fault levels a mutant of ``spec`` may legitimately add.

    Byzantine campaigns stay pure (every detection attributable to a
    defense, the sampler's rule); everything else draws from the plain
    single-region levels, honouring the corrupt-needs-scrub spec rule.
    """
    has_byz = any(
        action.kind == "inject" and action.level in BYZ_LEVELS
        for action in spec.actions
    )
    if has_byz:
        return list(BYZ_LEVELS)
    levels = ["node", "device", "slow_device", "net_degrade", "flap"]
    if spec.scrub_interval > 0:
        levels.append("corrupt")
    return levels


def fault_round(rng, spec: CampaignSpec,
                level: str) -> Optional[CampaignSpec]:
    """Append a fresh inject+restore round at the given fault level."""
    base = spec.actions[-1].at if spec.actions else 100.0
    at = base + float(rng.choice((100, 250, 500)))
    try:
        if level == "net_degrade":
            inject = ScheduledAction(at=at, kind="inject", level=level,
                                     count=1, loss=rng.choice((0.2, 0.5)),
                                     partition=rng.random() < 0.25)
        else:
            inject = ScheduledAction(at=at, kind="inject", level=level,
                                     count=1)
    except ValueError:
        return None
    restore = ScheduledAction(
        at=at + float(rng.choice((50, 200, 500))), kind="restore"
    )
    return _rebuild(spec, [*spec.actions, inject, restore])


def add_fault_round(rng, spec: CampaignSpec) -> Optional[CampaignSpec]:
    """Append an inject+restore round with a level the schedule may not
    have tried yet — one of two mutators that move a campaign along the
    fault-level coverage axis (the fuzzer's gap-aiming step is the
    other, via :func:`fault_round` with a chosen level).
    """
    return fault_round(rng, spec, rng.choice(allowed_levels(spec)))


def reshape_to(rng, spec: CampaignSpec,
               plugin: Optional[str] = None) -> Optional[CampaignSpec]:
    """Re-run the schedule under a different EC geometry.

    Draws from the sampler's own (plugin, params) table, restricted to
    geometries at least as tolerant as the current one — the schedule's
    budget accounting was done against the old ``m``, so any
    equal-or-better code keeps every inject statically safe.  With
    ``plugin`` given, only that plugin's geometries are considered (the
    fuzzer aims at coverage gaps this way); ``None`` means any.
    """
    if spec.num_regions > 1:
        return None  # geo geometries have their own region-cap table
    current = _tolerance(spec.ec_plugin, spec.ec_params)
    choices = [
        (candidate, params)
        for candidate, params in _EC_CHOICES
        if (candidate, params) != (spec.ec_plugin, spec.ec_params)
        and _tolerance(candidate, params) >= current
        and (plugin is None or candidate == plugin)
    ]
    if not choices:
        return None
    chosen, params = rng.choice(choices)
    hosts_needed = _shard_count(params) + _tolerance(chosen, params) + 1
    return _rebuild(
        spec, list(spec.actions),
        ec_plugin=chosen, ec_params=params,
        num_hosts=max(spec.num_hosts, hosts_needed),
    )


def reshape_code(rng, spec: CampaignSpec) -> Optional[CampaignSpec]:
    """Re-run the schedule under any other (equally tolerant) geometry."""
    return reshape_to(rng, spec, None)


#: The single-spec mutators ``mutate`` draws from.
MUTATORS = (
    drop_action,
    duplicate_action,
    retime_action,
    retarget_action,
    escalate_action,
    perturb_config,
    press_data,
    press_capacity,
    add_fault_round,
    reshape_code,
)


def splice(rng, first: CampaignSpec,
           second: CampaignSpec) -> Optional[CampaignSpec]:
    """Crossover: first's config and schedule prefix, second's suffix.

    The suffix is re-based in time to land after the prefix, so the
    spliced schedule stays ordered.  Levels that second's schedule needs
    scrubbing for keep it honest via reconstruction (a corrupt suffix
    into a scrub-off first returns ``None``).
    """
    if not first.actions or not second.actions:
        return None
    cut_a = rng.randrange(1, len(first.actions) + 1)
    cut_b = rng.randrange(len(second.actions))
    prefix = list(first.actions[:cut_a])
    base = prefix[-1].at
    suffix = []
    try:
        for action in second.actions[cut_b:]:
            offset = action.at - second.actions[cut_b].at
            suffix.append(replace(action, at=base + 50.0 + offset))
    except ValueError:
        return None
    return _rebuild(first, prefix + suffix)


def mutate(rng, spec: CampaignSpec, others=()) -> Optional[CampaignSpec]:
    """One mutation round: a random mutator (or a splice when possible)."""
    if others and rng.random() < 0.2:
        other = rng.choice(list(others))
        return splice(rng, spec, other)
    mutator = rng.choice(MUTATORS)
    return mutator(rng, spec)
