"""Multi-tenant client fleets with mClock QoS and per-tenant SLO accounting.

The tenancy subsystem replaces the single anonymous client stream with a
seeded fleet of tenants — each with its own arrival process, op mix, QoS
tags (mClock reservation/weight/limit) and declared SLO — and bills each
one separately: latency tails, throughput, write-amplification
attribution, and the windows where its SLO was violated.

Layering: ``repro.cluster`` knows nothing about tenants (OSDs expose
``qos_reads``/``qos_writes`` attach points that default to ``None``);
``repro.chaos`` imports tenancy for the fairness invariant; tenancy
never imports chaos.
"""

from .accounting import (
    TenantReport,
    build_tenant_report,
    fleet_reports,
    merge_windows,
    slo_violation_windows,
    windows_overlap,
)
from .experiment import TenantOutcome, run_tenant_experiment
from .fleet import TenantFleet, TenantLoadGenerator, TenantRuntime, install_qos
from .mclock import MClockScheduler, QosClass, QosClassStats
from .spec import (
    ARRIVAL_KINDS,
    LEGACY_TENANT_NAME,
    SloSpec,
    TenantFleetSpec,
    TenantSpec,
    tenant_class_name,
)

__all__ = [
    "ARRIVAL_KINDS",
    "LEGACY_TENANT_NAME",
    "MClockScheduler",
    "QosClass",
    "QosClassStats",
    "SloSpec",
    "TenantFleet",
    "TenantFleetSpec",
    "TenantLoadGenerator",
    "TenantOutcome",
    "TenantReport",
    "TenantRuntime",
    "TenantSpec",
    "build_tenant_report",
    "fleet_reports",
    "install_qos",
    "merge_windows",
    "run_tenant_experiment",
    "slo_violation_windows",
    "tenant_class_name",
    "windows_overlap",
]
