"""Per-tenant SLO accounting: latency tails, throughput, WA attribution.

Takes one tenant's raw samples and turns them into what an operator
(and the tuner) can act on: p50/p99/p999 latency, achieved throughput,
the tenant's share of write amplification, and — when the tenant
declared an :class:`~repro.tenancy.spec.SloSpec` — the *violation
windows*: fixed windows of the run where the tenant's p99 exceeded its
bound or its throughput fell under the floor.  Windows are what make
violations attributable: the chaos fairness invariant demands every
violation window overlap a fault window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.stats import percentile
from .fleet import TenantFleet, TenantRuntime
from .spec import SloSpec

__all__ = [
    "TenantReport",
    "build_tenant_report",
    "fleet_reports",
    "slo_violation_windows",
    "merge_windows",
    "windows_overlap",
]


def merge_windows(
    windows: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Coalesce touching/overlapping (start, end) windows, sorted."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def windows_overlap(
    window: Tuple[float, float], others: List[Tuple[float, float]]
) -> bool:
    """True when ``window`` intersects any window in ``others``."""
    start, end = window
    return any(start <= o_end and o_start <= end for o_start, o_end in others)


def slo_violation_windows(
    samples,
    slo: SloSpec,
    started_at: float,
    duration: float,
) -> List[Tuple[float, float]]:
    """Fixed-window SLO judgement over one tenant's read samples.

    The run is cut into ``slo.window``-second windows from
    ``started_at``; a window violates when the p99 latency of the reads
    *issued* in it exceeds ``slo.p99_latency``, or (with a nonzero
    floor) its completed read throughput drops below
    ``slo.throughput_floor``.  Windows with no samples at all only
    violate the floor — an idle tenant cannot miss a latency bound.
    Adjacent violating windows merge into one reported interval.
    """
    if duration <= 0:
        return []
    buckets: Dict[int, List[Any]] = {}
    for sample in samples:
        index = int((sample.issued_at - started_at) // slo.window)
        if index >= 0:
            buckets.setdefault(index, []).append(sample)
    count = max(1, math.ceil(duration / slo.window))
    violations: List[Tuple[float, float]] = []
    for index in range(count):
        start = started_at + index * slo.window
        end = min(start + slo.window, started_at + duration)
        window_samples = buckets.get(index, [])
        bad = False
        if window_samples:
            p99 = percentile([s.latency for s in window_samples], 99)
            bad = p99 > slo.p99_latency
        if not bad and slo.throughput_floor > 0:
            span = max(end - start, 1e-9)
            completed = sum(
                s.bytes_read
                for s in window_samples
                if s.issued_at + s.latency <= end
            )
            bad = completed / span < slo.throughput_floor
        if bad:
            violations.append((start, end))
    return merge_windows(violations)


@dataclass(frozen=True)
class TenantReport:
    """One tenant's accounting over a run (the ``ecfault tenants`` row)."""

    name: str
    reads_ok: int
    read_failures: int
    degraded_fraction: float
    p50: Optional[float]
    p99: Optional[float]
    p999: Optional[float]
    read_bytes: int
    throughput: float
    writes_ok: int
    write_failures: int
    logical_write_bytes: int
    stored_write_bytes: int
    #: stored/logical over this tenant's committed writes — the tenant's
    #: write-amplification attribution (0 when it never wrote).
    wa_attributed: float
    slo: Optional[SloSpec]
    slo_violations: Tuple[Tuple[float, float], ...] = field(default=())

    @property
    def slo_met(self) -> Optional[bool]:
        """True/False under a declared SLO, None without one."""
        if self.slo is None:
            return None
        return not self.slo_violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "reads_ok": self.reads_ok,
            "read_failures": self.read_failures,
            "degraded_fraction": self.degraded_fraction,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "read_bytes": self.read_bytes,
            "throughput": self.throughput,
            "writes_ok": self.writes_ok,
            "write_failures": self.write_failures,
            "logical_write_bytes": self.logical_write_bytes,
            "stored_write_bytes": self.stored_write_bytes,
            "wa_attributed": self.wa_attributed,
            "slo": self.slo.to_dict() if self.slo is not None else None,
            "slo_met": self.slo_met,
            "slo_violations": [list(window) for window in self.slo_violations],
        }


def build_tenant_report(
    runtime: TenantRuntime, started_at: float, duration: float
) -> TenantReport:
    """Fold one tenant's raw samples into a :class:`TenantReport`."""
    reads = runtime.load.stats
    writes = runtime.load.write_stats
    latencies = [s.latency for s in reads.samples]
    read_bytes = sum(s.bytes_read for s in reads.samples)
    span = max(duration, 1e-9)
    logical = writes.logical_bytes
    stored = writes.stored_bytes
    slo = runtime.spec.slo
    return TenantReport(
        name=runtime.spec.name,
        reads_ok=len(reads.samples),
        read_failures=reads.failures,
        degraded_fraction=reads.degraded_fraction,
        p50=percentile(latencies, 50) if latencies else None,
        p99=percentile(latencies, 99) if latencies else None,
        p999=percentile(latencies, 99.9) if latencies else None,
        read_bytes=read_bytes,
        throughput=read_bytes / span,
        writes_ok=len(writes.samples),
        write_failures=writes.failures,
        logical_write_bytes=logical,
        stored_write_bytes=stored,
        wa_attributed=stored / logical if logical else 0.0,
        slo=slo,
        slo_violations=tuple(
            slo_violation_windows(reads.samples, slo, started_at, duration)
        )
        if slo is not None
        else (),
    )


def fleet_reports(fleet: TenantFleet) -> List[TenantReport]:
    """Per-tenant reports in spec order (requires the fleet to have run)."""
    if fleet.started_at is None:
        raise RuntimeError("fleet has not run; nothing to report")
    return [
        build_tenant_report(
            fleet.tenants[tenant.name], fleet.started_at, fleet.duration
        )
        for tenant in fleet.spec.tenants
    ]
