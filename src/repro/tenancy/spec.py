"""Tenant fleet specification: who drives load, with what guarantees.

A :class:`TenantFleetSpec` is the complete, JSON-round-trippable
description of a multi-tenant client fleet: each :class:`TenantSpec`
declares its own arrival process, read/write/RMW mix, QoS tags
(reservation/weight/limit shares for the per-OSD mClock scheduler) and
optionally an :class:`SloSpec` — the p99 latency bound and throughput
floor the tenant was sold.  The fleet spec also carries the QoS knobs of
the background classes (recovery, scrub) so one document pins the whole
arbitration problem.

The pre-tenancy model — one anonymous read/write client stream — is the
*legacy-equivalent* fleet: exactly one default-named tenant, uniform
arrivals, QoS disabled.  :meth:`TenantFleetSpec.is_legacy_equivalent`
detects it, and the fleet/experiment layers then reuse the legacy RNG
streams and digest shape byte-for-byte (the seed-stability contract).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from .mclock import QosClass

__all__ = [
    "SloSpec",
    "TenantSpec",
    "TenantFleetSpec",
    "ARRIVAL_KINDS",
    "LEGACY_TENANT_NAME",
    "tenant_class_name",
]

#: Arrival processes a tenant may declare.
ARRIVAL_KINDS = ("uniform", "poisson")

#: The tenant name the legacy-equivalent single stream uses.
LEGACY_TENANT_NAME = "default"


def tenant_class_name(tenant_name: str) -> str:
    """The QoS class a tenant's I/O is tagged with at each OSD."""
    return f"tenant:{tenant_name}"


@dataclass(frozen=True)
class SloSpec:
    """One tenant's declared service-level objective.

    ``p99_latency`` bounds the per-window p99 read latency (seconds);
    ``throughput_floor`` is the minimum completed client bytes/second a
    non-empty window must sustain (0 disables it).  Violations are
    judged over fixed ``window``-second windows, which is what makes
    them *attributable*: a violation window either overlaps a fault
    window or it does not.
    """

    p99_latency: float
    throughput_floor: float = 0.0
    window: float = 60.0

    def __post_init__(self):
        if self.p99_latency <= 0:
            raise ValueError("p99_latency must be positive")
        if self.throughput_floor < 0:
            raise ValueError("throughput_floor must be >= 0")
        if self.window <= 0:
            raise ValueError("window must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, blob: Mapping[str, Any]) -> "SloSpec":
        return cls(
            p99_latency=float(blob["p99_latency"]),
            throughput_floor=float(blob.get("throughput_floor", 0.0)),
            window=float(blob.get("window", 60.0)),
        )


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: arrival process, op mix, QoS tags, optional SLO.

    ``interval`` is the mean seconds between ops (exact for ``uniform``
    arrivals, the exponential mean for ``poisson``).  ``reservation``,
    ``weight`` and ``limit`` feed the per-OSD mClock scheduler when the
    fleet enables QoS; with QoS off they are carried but inert.
    """

    name: str
    interval: float = 2.0
    arrival: str = "uniform"
    write_fraction: float = 0.0
    rmw_fraction: float = 0.5
    reservation: float = 0.0
    weight: float = 1.0
    limit: float = 0.0
    slo: Optional[SloSpec] = None

    def __post_init__(self):
        if not self.name or any(c in self.name for c in ":/ \t\n"):
            raise ValueError(
                f"tenant name must be non-empty without ':', '/' or "
                f"whitespace, got {self.name!r}"
            )
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival {self.arrival!r}; allowed: {ARRIVAL_KINDS}"
            )
        for field_name in ("write_fraction", "rmw_fraction"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        # Delegate share validation to the QoS class constructor.
        self.qos_class()

    def qos_class(self) -> QosClass:
        """This tenant's mClock class (reservation/weight/limit)."""
        return QosClass(
            name=tenant_class_name(self.name),
            reservation=self.reservation,
            weight=self.weight,
            limit=self.limit,
        )

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["slo"] = self.slo.to_dict() if self.slo is not None else None
        return data

    @classmethod
    def from_dict(cls, blob: Mapping[str, Any]) -> "TenantSpec":
        slo = blob.get("slo")
        return cls(
            name=str(blob["name"]),
            interval=float(blob.get("interval", 2.0)),
            arrival=str(blob.get("arrival", "uniform")),
            write_fraction=float(blob.get("write_fraction", 0.0)),
            rmw_fraction=float(blob.get("rmw_fraction", 0.5)),
            reservation=float(blob.get("reservation", 0.0)),
            weight=float(blob.get("weight", 1.0)),
            limit=float(blob.get("limit", 0.0)),
            slo=SloSpec.from_dict(slo) if slo else None,
        )


@dataclass(frozen=True)
class TenantFleetSpec:
    """A fleet of tenants plus the background classes' QoS knobs.

    ``qos_enabled`` attaches per-OSD mClock schedulers; ``client_rate``
    converts client transfer sizes into admission service time.  The
    recovery/scrub knobs keep background repair competitive: with the
    default ``recovery_reservation`` the recovery stream is guaranteed
    the same device share the dedicated throttles grant it when QoS is
    off, which is what keeps recovery completion time comparable across
    the QoS on/off axis.
    """

    tenants: Tuple[TenantSpec, ...]
    qos_enabled: bool = False
    client_rate: float = 150e6
    recovery_reservation: float = 0.7
    recovery_weight: float = 2.0
    scrub_weight: float = 1.0

    def __post_init__(self):
        if not self.tenants:
            raise ValueError("fleet needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {sorted(names)}")
        if self.client_rate <= 0:
            raise ValueError("client_rate must be positive")
        if not 0.0 <= self.recovery_reservation <= 1.0:
            raise ValueError("recovery_reservation must be in [0, 1]")
        if self.recovery_weight <= 0 or self.scrub_weight <= 0:
            raise ValueError("class weights must be positive")
        reserved = self.recovery_reservation + sum(
            tenant.reservation for tenant in self.tenants
        )
        if self.qos_enabled and reserved > 1.0 + 1e-9:
            raise ValueError(
                f"reservations oversubscribe the server: recovery "
                f"{self.recovery_reservation:g} + tenants sum to {reserved:g} > 1"
            )

    def is_legacy_equivalent(self) -> bool:
        """True when this fleet is the pre-tenancy single client stream.

        One tenant named :data:`LEGACY_TENANT_NAME`, uniform arrivals,
        QoS disabled: the fleet then consumes exactly the legacy RNG
        streams and its outcome digests stay byte-identical to the
        :class:`~repro.cluster.client.ClientLoadGenerator` path (the
        seed-stability regression pins this).  An SLO may still be
        declared — accounting draws nothing.
        """
        if self.qos_enabled or len(self.tenants) != 1:
            return False
        tenant = self.tenants[0]
        return tenant.name == LEGACY_TENANT_NAME and tenant.arrival == "uniform"

    def read_classes(self) -> Tuple[QosClass, ...]:
        """mClock classes of the read-side scheduler at each OSD."""
        return (
            QosClass(
                name="recovery",
                reservation=self.recovery_reservation,
                weight=self.recovery_weight,
            ),
            QosClass(name="scrub", weight=self.scrub_weight),
            *(tenant.qos_class() for tenant in self.tenants),
        )

    def write_classes(self) -> Tuple[QosClass, ...]:
        """mClock classes of the write-side scheduler at each OSD."""
        return self.read_classes()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenants": [tenant.to_dict() for tenant in self.tenants],
            "qos_enabled": self.qos_enabled,
            "client_rate": self.client_rate,
            "recovery_reservation": self.recovery_reservation,
            "recovery_weight": self.recovery_weight,
            "scrub_weight": self.scrub_weight,
        }

    @classmethod
    def from_dict(cls, blob: Mapping[str, Any]) -> "TenantFleetSpec":
        return cls(
            tenants=tuple(
                TenantSpec.from_dict(tenant) for tenant in blob["tenants"]
            ),
            qos_enabled=bool(blob.get("qos_enabled", False)),
            client_rate=float(blob.get("client_rate", 150e6)),
            recovery_reservation=float(blob.get("recovery_reservation", 0.7)),
            recovery_weight=float(blob.get("recovery_weight", 2.0)),
            scrub_weight=float(blob.get("scrub_weight", 1.0)),
        )

    @classmethod
    def legacy(
        cls,
        interval: float = 2.0,
        write_fraction: float = 0.0,
        rmw_fraction: float = 0.5,
        slo: Optional[SloSpec] = None,
    ) -> "TenantFleetSpec":
        """The legacy-equivalent fleet (one default tenant, QoS off)."""
        return cls(
            tenants=(
                TenantSpec(
                    name=LEGACY_TENANT_NAME,
                    interval=interval,
                    write_fraction=write_fraction,
                    rmw_fraction=rmw_fraction,
                    slo=slo,
                ),
            ),
        )
