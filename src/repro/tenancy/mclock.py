"""mClock-style QoS scheduling of per-OSD I/O admission.

Gulati et al.'s mClock (OSDI '10) — the algorithm behind Ceph's
``osd_op_queue = mclock_scheduler`` — arbitrates one shared resource
between competing classes, each declaring a *reservation* (minimum
service share it must receive), a *limit* (maximum share it may
receive), and a *weight* (its fraction of whatever is left).  Every
arriving request is stamped with three tags; with ``cost`` the request's
service time and ``prev`` the class's previous tag of the same kind::

    R = max(now, prev_R + cost / reservation)     (infinity when r = 0)
    L = max(now, prev_L + cost / limit)           (-infinity when unlimited)
    P = max(now, prev_P + cost / weight)

Dispatch is two-phase.  *Constraint phase*: among queue heads whose R
tag is due (R <= now), serve the smallest R tag — reservations are met
first, by deadline order.  *Weight phase*: otherwise, among heads whose
L tag is due (the class is under its limit), serve the smallest P tag —
spare capacity splits by weight.  A request served from the weight
phase credits its class's later R tags by ``cost / reservation`` so
weight-phase service is not double-charged against the reservation
(mClock's tag-adjustment rule).  Ties break deterministically on
``(tag, class name, arrival sequence)``, so the scheduler is
byte-reproducible under the simulation's deterministic event order.

Here reservation and limit are expressed as *work shares* — service-
seconds per second of wall clock, i.e. the fraction of the underlying
server's capacity — because every caller already converts bytes to
service time through its own rate model (recovery rates, scrub rate,
the scheduler's client rate).  A class with ``reservation=0.5`` is
guaranteed half the server; weights are dimensionless.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, Optional, Tuple

from ..sim import Environment, Event

__all__ = ["QosClass", "QosClassStats", "MClockScheduler"]


@dataclass(frozen=True)
class QosClass:
    """One competing class: reservation/limit shares and a weight.

    ``reservation`` and ``limit`` are fractions of the server's capacity
    (service-seconds per second); ``reservation=0`` guarantees nothing,
    ``limit=0`` means unlimited.  ``weight`` splits spare capacity.
    """

    name: str
    reservation: float = 0.0
    weight: float = 1.0
    limit: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("class name must be non-empty")
        if self.reservation < 0:
            raise ValueError("reservation must be >= 0")
        if self.limit < 0:
            raise ValueError("limit must be >= 0 (0 = unlimited)")
        if self.limit and self.limit < self.reservation:
            raise ValueError("limit must be >= reservation")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass
class QosClassStats:
    """Observable per-class behaviour (the fairness invariant's input)."""

    enqueued: int = 0
    served: int = 0
    busy_time: float = 0.0
    total_wait: float = 0.0
    max_wait: float = 0.0

    @property
    def in_flight(self) -> int:
        return self.enqueued - self.served


@dataclass
class _Job:
    """One queued request with its three tags."""

    cost: float
    arrived: float
    seqno: int
    r_tag: float
    l_tag: float
    p_tag: float
    done: Event


@dataclass
class _ClassState:
    spec: QosClass
    queue: Deque[_Job] = field(default_factory=deque)
    #: Last-assigned tags (the ``prev`` of the tag formula).
    r_tag: float = -math.inf
    l_tag: float = -math.inf
    p_tag: float = -math.inf
    stats: QosClassStats = field(default_factory=QosClassStats)


class MClockScheduler:
    """One mClock-arbitrated admission server.

    ``submit(class_name, service_time)`` returns an event that fires
    once the request has been admitted *and* served for ``service_time``
    — the same contract as ``ServiceCenter.request``, so the OSD grant
    methods can route through either transparently.  Unknown classes are
    admitted with :attr:`default_class` semantics (weight 1, no
    reservation), so attaching QoS never breaks an unconfigured caller.
    """

    def __init__(
        self,
        env: Environment,
        classes: Tuple[QosClass, ...] = (),
        name: str = "",
        client_rate: float = 100e6,
    ):
        if client_rate <= 0:
            raise ValueError("client_rate must be positive")
        self.env = env
        self.name = name
        #: Bytes/second used to convert client transfer sizes into
        #: admission service time (recovery and scrub bring their own
        #: rate models).
        self.client_rate = client_rate
        self._classes: Dict[str, _ClassState] = {}
        for spec in classes:
            if spec.name in self._classes:
                raise ValueError(f"duplicate QoS class {spec.name!r}")
            self._classes[spec.name] = _ClassState(spec=spec)
        self._seqno = 0
        self._arrival: Optional[Event] = None
        self._dispatcher = env.process(self._dispatch())

    # -- introspection -----------------------------------------------------------

    @property
    def classes(self) -> Dict[str, QosClassStats]:
        """Per-class stats, keyed by class name (deterministic order)."""
        return {name: state.stats for name, state in sorted(self._classes.items())}

    def queue_length(self, class_name: str) -> int:
        state = self._classes.get(class_name)
        return len(state.queue) if state is not None else 0

    @property
    def pending(self) -> int:
        return sum(len(state.queue) for state in self._classes.values())

    def client_cost(self, nbytes: int) -> float:
        """Admission service time for a client transfer of ``nbytes``."""
        return nbytes / self.client_rate

    # -- submission --------------------------------------------------------------

    def submit(self, class_name: str, service_time: float) -> Event:
        """Queue one request; the event fires when it finishes service."""
        if service_time < 0:
            raise ValueError(f"negative service time: {service_time!r}")
        state = self._classes.get(class_name)
        if state is None:
            state = _ClassState(spec=QosClass(name=class_name))
            self._classes[class_name] = state
        now = self.env.now
        spec = state.spec
        r_tag = (
            max(now, state.r_tag + service_time / spec.reservation)
            if spec.reservation > 0
            else math.inf
        )
        l_tag = (
            max(now, state.l_tag + service_time / spec.limit)
            if spec.limit > 0
            else -math.inf
        )
        p_tag = max(now, state.p_tag + service_time / spec.weight)
        if spec.reservation > 0:
            state.r_tag = r_tag
        if spec.limit > 0:
            state.l_tag = l_tag
        state.p_tag = p_tag
        job = _Job(
            cost=service_time,
            arrived=now,
            seqno=self._seqno,
            r_tag=r_tag,
            l_tag=l_tag,
            p_tag=p_tag,
            done=self.env.event(),
        )
        self._seqno += 1
        state.queue.append(job)
        state.stats.enqueued += 1
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()
        return job.done

    # -- dispatch ----------------------------------------------------------------

    def _pick(self, now: float):
        """(state, job, phase) to serve now, or the next eligible time.

        Returns ``(state, job, weight_phase, None)`` when a head is
        eligible, else ``(None, None, False, wake_at)`` where ``wake_at``
        is the earliest instant any head becomes eligible (None when no
        job is queued at all).
        """
        best_r = None  # (r_tag, name, seqno, state, job)
        best_p = None  # (p_tag, name, seqno, state, job)
        wake_at = None
        for name in sorted(self._classes):
            state = self._classes[name]
            if not state.queue:
                continue
            job = state.queue[0]
            if job.r_tag <= now:
                key = (job.r_tag, name, job.seqno)
                if best_r is None or key < best_r[:3]:
                    best_r = (*key, state, job)
            if job.l_tag <= now:
                key = (job.p_tag, name, job.seqno)
                if best_p is None or key < best_p[:3]:
                    best_p = (*key, state, job)
            eligible_at = min(
                job.r_tag if math.isfinite(job.r_tag) else math.inf,
                job.l_tag if job.l_tag > now else now,
            )
            if math.isfinite(eligible_at):
                wake_at = eligible_at if wake_at is None else min(wake_at, eligible_at)
        if best_r is not None:
            return best_r[3], best_r[4], False, None
        if best_p is not None:
            return best_p[3], best_p[4], True, None
        return None, None, False, wake_at

    def _dispatch(self) -> Generator:
        while True:
            state, job, weight_phase, wake_at = self._pick(self.env.now)
            if job is None:
                self._arrival = self.env.event()
                if wake_at is None:
                    yield self._arrival
                else:
                    # Every queued head is tag-gated (limits or future
                    # reservations): sleep to the earliest eligibility,
                    # but wake early on a new arrival.
                    yield self.env.any_of(
                        [self._arrival, self.env.timeout(wake_at - self.env.now)]
                    )
                self._arrival = None
                continue
            state.queue.popleft()
            if weight_phase and state.spec.reservation > 0:
                # mClock tag adjustment: weight-phase service must not
                # count against the reservation, so later R deadlines of
                # this class move earlier by the share just consumed.
                credit = job.cost / state.spec.reservation
                for queued in state.queue:
                    queued.r_tag -= credit
                state.r_tag -= credit
            wait = self.env.now - job.arrived
            stats = state.stats
            stats.total_wait += wait
            stats.max_wait = max(stats.max_wait, wait)
            yield self.env.timeout(job.cost)
            stats.served += 1
            stats.busy_time += job.cost
            job.done.succeed()
