"""Tenant-fleet experiments: faults + a multi-tenant load, per-tenant bill.

:func:`run_tenant_experiment` is the fleet generalisation of
:func:`repro.core.gray.run_gray_experiment`: ingest, warm up, inject the
faults, run every tenant's stream through the degraded window, restore,
settle, then fold each tenant's samples into a
:class:`~repro.tenancy.accounting.TenantReport`.

The outcome digest honours the seed-stability contract: a
legacy-equivalent fleet (one default tenant, uniform arrivals, QoS off)
produces a digest **byte-identical** to :class:`GrayOutcome`'s for the
same profile/workload/faults/seed — the regression test pins this.  Any
real fleet instead reports a ``tenants`` section (per-tenant samples and
counters) plus, when QoS is on, the per-class scheduler totals.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cluster.client import WRITE_STAT_KEYS
from ..cluster.health import check_health
from ..cluster.recovery import (
    CASCADE_STAT_KEYS,
    DELTA_STAT_KEYS,
    GEO_STAT_KEYS,
    RecoveryStats,
)
from ..core.controller import Controller
from ..core.fault_injector import FaultSpec
from ..core.gray import SETTLE_POLL, _converged
from ..core.logger import LogCollector
from ..core.profile import ExperimentProfile
from ..core.timeline import TenantSloTimeline, build_tenant_slo_timeline
from ..workload.generator import Workload
from .accounting import TenantReport, fleet_reports
from .fleet import TenantFleet
from .spec import TenantFleetSpec

__all__ = ["TenantOutcome", "run_tenant_experiment"]


@dataclass
class TenantOutcome:
    """Everything one tenant-fleet experiment produced."""

    fleet_spec: TenantFleetSpec
    fleet: TenantFleet
    reports: List[TenantReport]
    recovery_stats: RecoveryStats
    injected_osds: List[int]
    slowed_osds: List[int]
    markdowns: int
    pins: int
    health: str
    converged: bool
    finished_at: float
    collector: LogCollector
    #: Fault-active window of the run: first injection to restore (None
    #: when no fault was injected) — the attribution window SLO
    #: violations are judged against.
    fault_window: Optional[Tuple[float, float]] = None

    def slo_timeline(self) -> TenantSloTimeline:
        """The per-tenant SLO-violation band (Figure-3 style)."""
        return build_tenant_slo_timeline(
            [(report.name, list(report.slo_violations)) for report in self.reports],
            started_at=self.fleet.started_at or 0.0,
            duration=self.fleet.duration,
            fault_window=self.fault_window,
        )

    def digest(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable snapshot (the determinism contract).

        Legacy-equivalent fleets reproduce :class:`GrayOutcome`'s digest
        byte-for-byte; real fleets replace the single-client sections
        with a per-tenant map and (under QoS) the scheduler totals.
        """
        recovery = asdict(self.recovery_stats)
        for key in DELTA_STAT_KEYS + GEO_STAT_KEYS + CASCADE_STAT_KEYS:
            if recovery.get(key) == 0:
                del recovery[key]
        payload: Dict[str, Any] = {
            "finished_at": self.finished_at,
            "health": str(self.health),
            "converged": self.converged,
            "injected_osds": list(self.injected_osds),
            "slowed_osds": list(self.slowed_osds),
            "markdowns": self.markdowns,
            "pins": self.pins,
            "recovery": recovery,
        }
        if self.fleet_spec.is_legacy_equivalent():
            runtime = next(iter(self.fleet.tenants.values()))
            payload.update(_legacy_client_sections(runtime))
            return payload
        payload["tenants"] = {
            runtime.spec.name: _tenant_section(runtime)
            for runtime in self.fleet.tenants.values()
        }
        if self.fleet_spec.qos_enabled:
            payload["qos"] = self.fleet.qos_class_totals()
        return payload

    def digest_json(self) -> str:
        """The digest as canonical JSON — byte-comparable across runs."""
        return json.dumps(
            self.digest(), sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        )


def _legacy_client_sections(runtime) -> Dict[str, Any]:
    """The exact single-client sections of :meth:`GrayOutcome.digest`."""
    client = asdict(runtime.client.stats)
    for key in WRITE_STAT_KEYS:
        if client.get(key) == 0:
            del client[key]
    payload: Dict[str, Any] = {
        "client": client,
        "read_failures": runtime.load.stats.failures,
        "samples": [
            [s.object_name, s.issued_at, s.latency, s.degraded,
             s.bytes_read, s.attempts, s.hedged]
            for s in runtime.load.stats.samples
        ],
    }
    writes = runtime.load.write_stats
    if writes.samples or writes.failures:
        payload["write_failures"] = writes.failures
        payload["write_samples"] = [
            [s.object_name, s.issued_at, s.latency, s.kind, s.degraded,
             s.bytes_written, s.attempts]
            for s in writes.samples
        ]
    return payload


def _tenant_section(runtime) -> Dict[str, Any]:
    """One tenant's digest entry (client counters + raw samples)."""
    section = _legacy_client_sections(runtime)
    writes = runtime.load.write_stats
    if writes.samples:
        section["stored_write_bytes"] = writes.stored_bytes
    return section


def run_tenant_experiment(
    profile: ExperimentProfile,
    workload: Workload,
    fleet_spec: TenantFleetSpec,
    faults: Sequence[FaultSpec] = (),
    seed: int = 0,
    warmup: float = 50.0,
    fault_duration: float = 600.0,
    settle_time: float = 20_000.0,
) -> TenantOutcome:
    """Run one fleet cycle and return the per-tenant outcome.

    Mirrors :func:`~repro.core.gray.run_gray_experiment`: the fleet runs
    open-loop for ``fault_duration`` seconds while the faults are
    active, every fault is restored, and the cluster settles until
    health converges.  With no ``faults`` the fleet simply runs against
    a healthy cluster (the QoS-off/on baseline comparisons).
    """
    if fault_duration <= 0:
        raise ValueError("fault_duration must be positive")
    controller = Controller(profile, seed=seed)
    env = controller.env
    cluster = controller.cluster
    coordinator = controller.coordinator

    coordinator.ingest_workload(workload)
    fleet = TenantFleet(cluster, fleet_spec, seeds=controller.seeds)

    env.run(until=env.now + warmup)
    injected: List[int] = []
    fault_start = env.now if faults else None
    for spec in faults:
        injected.extend(controller.fault_injector.inject(spec))
    slowed = sorted(controller.fault_injector.slowed_osds)

    fleet_proc = fleet.run_for(fault_duration)
    env.run(until=env.now + fault_duration)
    controller.fault_injector.restore_all()
    # Drain every tenant's in-flight ops (retries may outlive the window).
    env.run_until_process(fleet_proc)

    deadline = env.now + settle_time
    converged = _converged(cluster)
    while not converged and env.now < deadline:
        env.run(until=min(env.now + SETTLE_POLL, deadline))
        converged = _converged(cluster)

    for logger in coordinator.loggers:
        logger.flush()
    coordinator.collector.collect()

    return TenantOutcome(
        fleet_spec=fleet_spec,
        fleet=fleet,
        reports=fleet_reports(fleet),
        recovery_stats=cluster.recovery.stats,
        injected_osds=sorted(injected),
        slowed_osds=slowed,
        markdowns=cluster.monitor.markdowns_total,
        pins=cluster.monitor.pins_total,
        health=str(check_health(cluster).status),
        converged=converged,
        finished_at=env.now,
        collector=coordinator.collector,
        fault_window=(fault_start, env.now) if fault_start is not None else None,
    )
