"""The tenant fleet: seeded per-tenant load streams over one cluster.

Replaces the single :class:`~repro.cluster.client.ClientLoadGenerator`
stream with one :class:`TenantLoadGenerator` per tenant, each drawing
from its own derived RNG substream (``seeds.derive("tenant-<name>")``)
so adding, removing or re-ordering tenants never perturbs another
tenant's op sequence.  The *legacy-equivalent* fleet (one default
tenant, uniform arrivals, QoS off) instead consumes the root seed's
``client-load``/``client-retry`` streams directly — byte-identical to
the pre-tenancy model, which the seed-stability regression pins.

:func:`install_qos` attaches one read-side and one write-side
:class:`~repro.tenancy.mclock.MClockScheduler` to every OSD; from then
on the OSD grant methods and the tagged clients route admission through
mClock instead of the dedicated per-purpose service centers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from ..cluster.ceph import CephCluster
from ..cluster.client import ClientLoadGenerator, RadosClient
from ..sim import Event
from ..sim.rng import SeedSequence
from .mclock import MClockScheduler, QosClassStats
from .spec import TenantFleetSpec, TenantSpec, tenant_class_name

__all__ = ["TenantLoadGenerator", "TenantRuntime", "TenantFleet", "install_qos"]


def install_qos(cluster: CephCluster, spec: TenantFleetSpec) -> None:
    """Attach mClock schedulers for this fleet to every OSD.

    Two schedulers per OSD — read-side (recovery + scrub + tenant
    fetches) and write-side (recovery pushes + tenant writes) — mirror
    the two dedicated service centers they replace, so the QoS-off and
    QoS-on models give the background classes the same raw capacity.
    """
    for osd_id in sorted(cluster.osds):
        osd = cluster.osds[osd_id]
        osd.qos_reads = MClockScheduler(
            cluster.env,
            classes=spec.read_classes(),
            name=f"{osd.name}.qos-rd",
            client_rate=spec.client_rate,
        )
        osd.qos_writes = MClockScheduler(
            cluster.env,
            classes=spec.write_classes(),
            name=f"{osd.name}.qos-wr",
            client_rate=spec.client_rate,
        )


class TenantLoadGenerator(ClientLoadGenerator):
    """One tenant's open-loop op stream.

    Identical to :class:`~repro.cluster.client.ClientLoadGenerator`
    under ``uniform`` arrivals — same RNG stream, same draw order — and
    additionally supports ``poisson`` arrivals, whose exponential
    inter-arrival draw happens *after* the op draws so the uniform
    stream stays untouched (the digest-compatibility pattern).
    """

    def __init__(
        self,
        client: RadosClient,
        interval: float,
        seeds: Optional[SeedSequence] = None,
        write_fraction: float = 0.0,
        rmw_fraction: float = 0.5,
        arrival: str = "uniform",
    ):
        super().__init__(
            client,
            interval,
            seeds=seeds,
            write_fraction=write_fraction,
            rmw_fraction=rmw_fraction,
        )
        if arrival not in ("uniform", "poisson"):
            raise ValueError(f"unknown arrival {arrival!r}")
        self.arrival = arrival

    def _run(self, duration: float) -> Generator:
        env = self.client.cluster.env
        names = self._object_names()
        if not names:
            raise RuntimeError("pool holds no objects to read")
        deadline = env.now + duration
        pending = []
        while env.now < deadline:
            name = self.rng.choice(names)
            if (
                self.write_fraction > 0.0
                and self.rng.random() < self.write_fraction
            ):
                if (
                    self.rmw_fraction > 0.0
                    and self.rng.random() < self.rmw_fraction
                ):
                    shard = self.rng.randrange(self.client.cluster.pool.code.k)
                    pending.append(env.process(self._one_rmw(name, shard)))
                else:
                    pending.append(env.process(self._one_write(name)))
            else:
                pending.append(env.process(self._one_read(name)))
            if self.arrival == "poisson":
                # Drawn after the op draws: uniform-arrival tenants never
                # reach this call, so their stream matches the legacy
                # generator draw-for-draw.
                yield env.timeout(self.rng.expovariate(1.0 / self.interval))
            else:
                yield env.timeout(self.interval)
        if pending:
            yield env.all_of(pending)


@dataclass
class TenantRuntime:
    """One tenant's live pieces: spec, client, load stream."""

    spec: TenantSpec
    client: RadosClient
    load: TenantLoadGenerator


class TenantFleet:
    """All tenants of one experiment, bound to one cluster.

    Building the fleet attaches QoS schedulers when the spec enables
    them and constructs one seeded client + load generator per tenant.
    ``run_for`` starts every tenant's stream; the returned event fires
    once all of them (including trailing retries) have drained.
    """

    def __init__(
        self,
        cluster: CephCluster,
        spec: TenantFleetSpec,
        seeds: Optional[SeedSequence] = None,
    ):
        self.cluster = cluster
        self.spec = spec
        seeds = seeds or SeedSequence(0)
        if spec.qos_enabled:
            install_qos(cluster, spec)
        legacy = spec.is_legacy_equivalent()
        self.tenants: Dict[str, TenantRuntime] = {}
        for tenant in spec.tenants:
            tenant_seeds = (
                seeds if legacy else seeds.derive(f"tenant-{tenant.name}")
            )
            client = RadosClient(
                cluster,
                name="client.0" if legacy else f"client.{tenant.name}",
                seeds=tenant_seeds,
                qos_class=(
                    tenant_class_name(tenant.name) if spec.qos_enabled else None
                ),
            )
            load = TenantLoadGenerator(
                client,
                interval=tenant.interval,
                seeds=tenant_seeds,
                write_fraction=tenant.write_fraction,
                rmw_fraction=tenant.rmw_fraction,
                arrival=tenant.arrival,
            )
            self.tenants[tenant.name] = TenantRuntime(
                spec=tenant, client=client, load=load
            )
        #: Set by run_for — the accounting window's origin.
        self.started_at: Optional[float] = None
        self.duration: float = 0.0

    def run_for(self, duration: float) -> Event:
        """Start every tenant's stream; fires when all have drained."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.started_at = self.cluster.env.now
        self.duration = duration
        return self.cluster.env.all_of(
            [runtime.load.run_for(duration) for runtime in self.tenants.values()]
        )

    # -- QoS introspection (the fairness invariant's raw material) -------------

    def qos_class_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-class counters summed over every OSD scheduler.

        Keys are class names; values carry ``enqueued``, ``served``,
        ``busy_time`` and the fleet-wide ``max_wait``.  Empty when QoS
        is off.
        """
        totals: Dict[str, Dict[str, float]] = {}
        for stats_by_class in self._all_scheduler_stats():
            for name, stats in stats_by_class.items():
                bucket = totals.setdefault(
                    name,
                    {"enqueued": 0, "served": 0, "busy_time": 0.0, "max_wait": 0.0},
                )
                bucket["enqueued"] += stats.enqueued
                bucket["served"] += stats.served
                bucket["busy_time"] += stats.busy_time
                bucket["max_wait"] = max(bucket["max_wait"], stats.max_wait)
        return totals

    def qos_pending(self) -> int:
        """Requests still queued in any scheduler (0 once drained)."""
        pending = 0
        for osd_id in sorted(self.cluster.osds):
            osd = self.cluster.osds[osd_id]
            for sched in (osd.qos_reads, osd.qos_writes):
                if sched is not None:
                    pending += sched.pending
        return pending

    def _all_scheduler_stats(self) -> List[Dict[str, QosClassStats]]:
        out: List[Dict[str, QosClassStats]] = []
        for osd_id in sorted(self.cluster.osds):
            osd = self.cluster.osds[osd_id]
            for sched in (osd.qos_reads, osd.qos_writes):
                if sched is not None:
                    out.append(sched.classes)
        return out
