#!/usr/bin/env python
"""Failure modes: concurrent device faults, same host vs spread.

Reproduces the spirit of Figure 2d at example scale: the failure domain
is set to OSD, every host gets a third SSD, and ECFault injects two or
three concurrent device faults either co-located on one storage node or
spread across nodes — then compares RS(12,9) and Clay(12,9,11) recovery.

Run:  python examples/failure_modes.py
      python examples/failure_modes.py --objects 4000   (closer to Fig 2d)
"""

import argparse

from repro.core import (
    Colocation,
    ExperimentProfile,
    FaultSpec,
    format_table,
    run_experiment,
)
from repro.workload import Workload

MB = 1024 * 1024

MODES = [
    ("1 failure", FaultSpec(level="device", count=1)),
    ("2 failures, same host",
     FaultSpec(level="device", count=2, colocation=Colocation.SAME_HOST)),
    ("2 failures, diff hosts",
     FaultSpec(level="device", count=2, colocation=Colocation.DIFFERENT_HOSTS)),
    ("3 failures, same host",
     FaultSpec(level="device", count=3, colocation=Colocation.SAME_HOST)),
    ("3 failures, diff hosts",
     FaultSpec(level="device", count=3, colocation=Colocation.DIFFERENT_HOSTS)),
]


def profile_for(plugin: str) -> ExperimentProfile:
    params = {"k": 9, "m": 3} if plugin == "jerasure" else {"k": 9, "m": 3, "d": 11}
    return ExperimentProfile(
        name=plugin,
        ec_plugin=plugin,
        ec_params=params,
        failure_domain="osd",
        osds_per_host=3,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=1500)
    args = parser.parse_args()
    workload = Workload(num_objects=args.objects, object_size=64 * MB)

    rows = []
    for plugin in ("jerasure", "clay"):
        baseline = None
        for label, spec in MODES:
            outcome = run_experiment(
                profile_for(plugin), workload, [spec], seed=11
            )
            total = outcome.total_recovery_time
            if baseline is None:
                baseline = total
            stats = outcome.recovery_stats
            rows.append(
                [
                    plugin,
                    label,
                    f"{total:.0f}s",
                    f"{total / baseline:.2f}x",
                    stats.chunks_rebuilt,
                    f"{stats.bytes_read / 1e9:.1f} GB",
                ]
            )
    print(
        format_table(
            "Failure modes: recovery vs count and locality (cf. Figure 2d)",
            ["code", "mode", "recovery", "vs 1-failure", "chunks rebuilt",
             "repair reads"],
            rows,
        )
    )
    print(
        "\nEC-aware injection (§3.2): multi-device faults land inside one"
        "\nplacement group's acting set, so '3 failures' exercises real"
        "\n3-erasure stripes rather than three unrelated repairs."
    )


if __name__ == "__main__":
    main()
