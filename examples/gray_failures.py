#!/usr/bin/env python
"""Gray failures: slow disks, flapping daemons, flaky networks — and defenses.

Crashes are the easy case: the monitor sees silence, marks the OSD down,
and recovery re-encodes.  Gray failures are the miserable middle — the
disk still answers (16x slower), the daemon keeps rejoining, the NIC
drops half the packets — and naive clusters thrash.  Three seeded
scenarios show the axis and what each defense buys:

  1. slow disk   — a 16x-slowed helper inflates EC recovery time, yet is
                   never marked down (heartbeats are cheap; data I/O is
                   what suffers).
  2. flap        — an OSD daemon oscillating every 15s is pinned down by
                   monitor-side flap dampening after the markdown
                   budget, and health still converges to HEALTH_OK.
  3. flaky net   — op timeouts + seeded backoff + hedged/redirected
                   degraded reads cut client p99 several-fold on a
                   degraded path.

Every scenario runs twice with the same seed and asserts the outcome
digests are byte-identical — gray faults and their defenses live inside
the deterministic simulation contract.

Run:  python examples/gray_failures.py
      python examples/gray_failures.py --factor 8 --objects 16
"""

import argparse

from repro.cluster import CephConfig
from repro.core import (
    Controller,
    ExperimentProfile,
    FaultSpec,
    TimelineError,
    build_timeline,
    run_gray_experiment,
)
from repro.workload import Workload

MB = 1024 * 1024


def profile_for(**ceph_overrides) -> ExperimentProfile:
    return ExperimentProfile(
        name="gray-failures",
        ec_params={"k": 4, "m": 2},
        num_hosts=8,
        osds_per_host=2,
        pg_num=8,
        stripe_unit=1 * MB,
        ceph=CephConfig(mon_osd_down_out_interval=30.0, **ceph_overrides),
    )


def scout_stripe(profile, workload, seed):
    """Same profile + seed => same placement: find a loaded PG's stripe.

    A probe run ingests the workload once to learn which placement
    group actually holds objects, then the real experiments crash that
    PG's primary and slow every surviving disk.
    """
    controller = Controller(profile, seed=seed)
    controller.coordinator.ingest_workload(workload)
    pg = max(
        controller.cluster.pool.pgs.values(), key=lambda p: len(p.objects)
    )
    victim = pg.acting[0]
    helpers = [o for o in controller.cluster.osds if o != victim]
    return victim, helpers


def assert_deterministic(label, run):
    first, second = run(), run()
    assert first.digest_json() == second.digest_json(), (
        f"{label}: same-seed outcomes diverged"
    )
    print(f"  [determinism] {label}: two same-seed runs are byte-identical")
    return first


def scenario_slow_disk(args):
    print("=== 1. Slow disk: recovery inflates, markdown never fires ===")
    profile = profile_for()
    workload = Workload(num_objects=3, object_size=64 * MB)
    victim, helpers = scout_stripe(profile, workload, seed=11)

    def run(slow):
        faults = [FaultSpec(level="device", targets=[victim])]
        if slow:
            faults.append(
                FaultSpec(
                    level="slow_device", factor=args.factor, targets=helpers
                )
            )
        return run_gray_experiment(
            profile, workload, faults, seed=11, fault_duration=400.0
        )

    baseline = run(slow=False)
    slowed = assert_deterministic("slow disk", lambda: run(slow=True))
    times = {}
    for label, outcome in (("crash only", baseline),
                           (f"crash + {args.factor:.0f}x slow", slowed)):
        timeline = build_timeline(outcome.collector)
        times[label] = timeline.ec_recovery_period
        print(
            f"  {label:<20} EC recovery {timeline.ec_recovery_period:7.2f}s"
            f"   markdowns {outcome.markdowns}   health {outcome.health}"
        )
    assert slowed.markdowns == 1, "slow helpers must never be marked down"
    assert times[f"crash + {args.factor:.0f}x slow"] > times["crash only"]
    ratio = times[f"crash + {args.factor:.0f}x slow"] / times["crash only"]
    print(
        f"  -> {args.factor:.0f}x slower media stretched recovery {ratio:.2f}x"
        " while heartbeats kept every slow OSD 'up' under default grace\n"
    )


def scenario_flap(args):
    print("=== 2. Flapping OSD: dampening pins it, health converges ===")
    profile = profile_for(mon_osd_markdown_count=3)
    workload = Workload(num_objects=args.objects, object_size=1 * MB)

    def run():
        return run_gray_experiment(
            profile,
            workload,
            [FaultSpec(level="flap", flap_interval=15.0)],
            seed=5,
            fault_duration=900.0,
        )

    outcome = assert_deterministic("flap", run)
    assert outcome.pins >= 1, "dampening never pinned the flapping OSD"
    assert outcome.converged and outcome.health == "HEALTH_OK"
    print(
        f"  markdowns {outcome.markdowns}, pins {outcome.pins}, "
        f"final health {outcome.health}"
    )
    if outcome.flap_timeline is not None:
        for offset, label in outcome.flap_timeline.annotations():
            print(f"  t+{offset:7.1f}s  {label}")
    print(
        "  -> after mon_osd_markdown_count markdowns inside the period the"
        "\n     monitor stops believing the daemon's heartbeats (pin), the"
        "\n     map stops thrashing, and the pin expires into HEALTH_OK\n"
    )


def scenario_flaky_net(args):
    print("=== 3. Flaky network: hedged/redirected reads rescue p99 ===")
    workload = Workload(num_objects=args.objects, object_size=1 * MB)
    faults = [
        FaultSpec(level="device", count=1),
        FaultSpec(
            level="net_degrade", latency=2.0, bandwidth_penalty=8.0
        ),
    ]

    def run(defended):
        overrides = (
            {"client_op_timeout": 0.4, "client_retry_base": 0.1,
             "client_hedge_delay": 0.15}
            if defended
            else {}
        )
        return run_gray_experiment(
            profile_for(**overrides),
            workload,
            faults,
            seed=7,
            fault_duration=400.0,
        )

    naive = run(defended=False)
    defended = assert_deterministic("flaky net", lambda: run(defended=True))
    for label, outcome in (("no defenses", naive), ("defended", defended)):
        stats = outcome.read_stats
        c = outcome.client_stats
        print(
            f"  {label:<12} p50 {stats.latency_percentile(50):6.3f}s"
            f"  p99 {stats.latency_percentile(99):6.3f}s"
            f"  timeouts {c.timeouts:3d}  hedges won {c.hedges_won:3d}"
            f"  redirects {c.redirects:3d}  health {outcome.health}"
        )
    p99_naive = naive.read_stats.latency_percentile(99)
    p99_defended = defended.read_stats.latency_percentile(99)
    assert p99_defended < p99_naive, "defenses must cut tail latency"
    assert defended.converged and naive.converged
    print(
        f"  -> op timeout + hedge + primary redirect cut p99 "
        f"{p99_naive / p99_defended:.1f}x on a degraded path\n"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=12)
    parser.add_argument("--factor", type=float, default=16.0)
    args = parser.parse_args()
    scenario_slow_disk(args)
    scenario_flap(args)
    scenario_flaky_net(args)
    print(
        "Gray faults share the crash axis' white-box guard: combined with"
        "\ncrash faults they never exceed what the erasure code tolerates,"
        "\nso every degraded window above was survivable by construction."
    )


if __name__ == "__main__":
    main()
