#!/usr/bin/env python
"""Write-amplification calculator: the paper's §4.4 formula in practice.

For a given object size, EC parameters and stripe unit, prints the
theoretical n/k, the paper's division-and-padding estimate, and — when
run with --measure — the actual OSD-level WA from a simulated ingest.

Run:  python examples/wa_calculator.py
      python examples/wa_calculator.py --object-size 28KB --k 12 --m 3
      python examples/wa_calculator.py --measure
"""

import argparse
import re

from repro.core import (
    ExperimentProfile,
    estimate_wa,
    format_table,
    run_experiment,
    theoretical_wa,
)
from repro.workload import Workload

KB, MB = 1024, 1024 * 1024


def parse_size(text: str) -> int:
    match = re.fullmatch(r"(\d+)\s*(KB|MB|B)?", text.strip(), re.IGNORECASE)
    if not match:
        raise argparse.ArgumentTypeError(f"cannot parse size {text!r}")
    value = int(match.group(1))
    unit = (match.group(2) or "B").upper()
    return value * {"B": 1, "KB": KB, "MB": MB}[unit]


def measured_wa(object_size: int, k: int, m: int, stripe_unit: int) -> float:
    profile = ExperimentProfile(
        name="wa", ec_params={"k": k, "m": m}, stripe_unit=stripe_unit,
        pg_num=32, num_hosts=max(15, k + m + 3),
    )
    workload = Workload(num_objects=50, object_size=object_size)
    outcome = run_experiment(profile, workload, faults=[])
    return outcome.wa.actual


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--object-size", type=parse_size, default=parse_size("28KB"))
    parser.add_argument("--k", type=int, default=9)
    parser.add_argument("--m", type=int, default=3)
    parser.add_argument("--stripe-unit", type=parse_size, default=parse_size("4KB"))
    parser.add_argument("--measure", action="store_true",
                        help="also ingest into a simulated cluster and measure")
    args = parser.parse_args()

    n = args.k + args.m
    rows = []
    sweep = [args.object_size] + [
        s for s in (28 * KB, 44 * KB, 1 * MB, 64 * MB) if s != args.object_size
    ]
    for size in sweep:
        theory = theoretical_wa(n, args.k)
        estimate = estimate_wa(size, n, args.k, args.stripe_unit)
        row = [
            f"{size / KB:g} KB" if size < MB else f"{size / MB:g} MB",
            f"{theory:.3f}",
            f"{estimate:.3f}",
            f"{(estimate / theory - 1) * 100:+.1f}%",
        ]
        if args.measure:
            actual = measured_wa(size, args.k, args.m, args.stripe_unit)
            row.append(f"{actual:.3f}")
        rows.append(row)

    columns = ["object size", "n/k", "estimate", "est. vs n/k"]
    if args.measure:
        columns.append("measured")
    print(
        format_table(
            f"WA for RS({n},{args.k}), stripe_unit="
            f"{args.stripe_unit // KB} KB   "
            "(estimate = (n*S_chunk+S_meta)/S_obj with S_meta=0)",
            columns,
            rows,
        )
    )
    print(
        "\nThe estimate always lower-bounds the measured value (metadata"
        "\nis excluded) but is tighter than n/k — the paper's §4.4 claim."
    )


if __name__ == "__main__":
    main()
