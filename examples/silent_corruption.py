#!/usr/bin/env python
"""Silent corruption: bit rot, torn writes, misdirected writes.

A new fault axis beyond crashes: chunks are damaged *silently* — the OSD
stays up and nothing fails loudly.  Write-time crc32c block checksums
plus periodic deep scrub are the only line of defence.  For each
corruption model this example injects two bad chunks into one stripe
(the white-box guard refuses more than m), lets the deep-scrub state
machine detect them, EC-decode-repair them bit-identically, and walks
the cluster back HEALTH_ERR -> HEALTH_WARN -> HEALTH_OK.

Run:  python examples/silent_corruption.py
      python examples/silent_corruption.py --scrub-interval 120
"""

import argparse

from repro.cluster import CephConfig
from repro.core import (
    CorruptionModel,
    ExperimentProfile,
    FaultSpec,
    format_table,
    run_experiment,
)
from repro.workload import Workload

KB = 1024


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=12)
    parser.add_argument("--scrub-interval", type=float, default=60.0)
    parser.add_argument("--corrupt-chunks", type=int, default=2)
    args = parser.parse_args()

    profile = ExperimentProfile(
        name="silent-corruption",
        ec_params={"k": 4, "m": 2},
        num_hosts=8,
        pg_num=16,
        stripe_unit=64 * KB,
        ceph=CephConfig(mon_osd_down_out_interval=30.0),
        scrub_interval=args.scrub_interval,
        integrity_data_plane=True,  # real bytes: encode, crc32c, decode-repair
    )
    workload = Workload(num_objects=args.objects, object_size=256 * KB)

    rows = []
    last = None
    for model in CorruptionModel.ALL:
        outcome = run_experiment(
            profile,
            workload,
            [FaultSpec(level="corrupt", count=args.corrupt_chunks,
                       corruption=model)],
            seed=7,
            settle_time=30.0,
            max_sim_time=20_000.0,
        )
        timeline = outcome.scrub_timeline
        stats = outcome.scrub_stats
        rows.append(
            [
                model,
                stats.errors_detected,
                stats.chunks_repaired,
                f"{timeline.detection_period:.1f}s",
                f"{timeline.repair_period * 1000:.1f}ms",
                f"{timeline.total_cycle:.1f}s",
            ]
        )
        last = (model, timeline)

    print(
        format_table(
            "Silent corruption: detection and repair per model "
            f"(scrub every {args.scrub_interval:.0f}s)",
            ["model", "detected", "repaired", "detect after",
             "repair time", "full cycle"],
            rows,
        )
    )

    model, timeline = last
    print(f"\nHealth state machine for {model!r} (relative times):")
    for offset, label in timeline.annotations():
        print(f"  t+{offset:8.1f}s  {label}")
    print(
        "\nDetection dominates the cycle "
        f"({100 * timeline.detection_fraction:.1f}% here): a corruption sits"
        "\nundetected until the next deep scrub touches its PG, which is why"
        "\nthe scrub interval is a first-class configuration axis."
    )


if __name__ == "__main__":
    main()
