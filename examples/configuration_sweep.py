#!/usr/bin/env python
"""Configuration sweep: how pool settings move EC recovery time.

Reproduces the spirit of §4.2 at example scale: sweeps placement-group
count and caching scheme for RS(12,9) vs Clay(12,9,11) and prints each
panel normalised to its fastest configuration — the paper's Figure 2
presentation.

Run:  python examples/configuration_sweep.py          (a couple of minutes)
      python examples/configuration_sweep.py --objects 500   (quick look)
"""

import argparse

from repro.analysis import normalised_series, render_figure2_panel
from repro.core import ExperimentProfile, FaultSpec, run_experiment
from repro.workload import Workload

MB = 1024 * 1024


def recovery_time(profile: ExperimentProfile, workload: Workload, seed: int = 7) -> float:
    outcome = run_experiment(
        profile, workload, [FaultSpec(level="node", count=1)], seed=seed
    )
    return outcome.total_recovery_time


def sweep_pg_num(workload: Workload) -> None:
    groups = ["1 PG", "16 PGs", "256 PGs"]
    results = {"rs": {}, "clay": {}}
    for plugin, params in (
        ("jerasure", {"k": 9, "m": 3}),
        ("clay", {"k": 9, "m": 3, "d": 11}),
    ):
        key = "rs" if plugin == "jerasure" else "clay"
        for label, pg_num in zip(groups, (1, 16, 256)):
            profile = ExperimentProfile(
                name=f"{key}-pg{pg_num}", ec_plugin=plugin,
                ec_params=dict(params), pg_num=pg_num,
            )
            results[key][label] = recovery_time(profile, workload)
    everything = {**{f"rs/{k}": v for k, v in results["rs"].items()},
                  **{f"clay/{k}": v for k, v in results["clay"].items()}}
    norm = normalised_series(everything)
    print(render_figure2_panel(
        "b (example scale)",
        groups,
        {g: norm[f"rs/{g}"] for g in groups},
        {g: norm[f"clay/{g}"] for g in groups},
    ))
    print()


def sweep_cache_scheme(workload: Workload) -> None:
    groups = ["kv-optimized", "data-optimized", "autotune"]
    everything = {}
    for plugin, params, key in (
        ("jerasure", {"k": 9, "m": 3}, "rs"),
        ("clay", {"k": 9, "m": 3, "d": 11}, "clay"),
    ):
        for scheme in groups:
            profile = ExperimentProfile(
                name=f"{key}-{scheme}", ec_plugin=plugin,
                ec_params=dict(params), cache_scheme=scheme,
            )
            everything[f"{key}/{scheme}"] = recovery_time(profile, workload)
    norm = normalised_series(everything)
    print(render_figure2_panel(
        "a (example scale)",
        groups,
        {g: norm[f"rs/{g}"] for g in groups},
        {g: norm[f"clay/{g}"] for g in groups},
    ))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=2000,
                        help="workload size (objects of 64 MB)")
    args = parser.parse_args()
    workload = Workload(num_objects=args.objects, object_size=64 * MB)
    print(f"workload: {args.objects} x 64 MB objects\n")
    sweep_cache_scheme(workload)
    sweep_pg_num(workload)


if __name__ == "__main__":
    main()
