#!/usr/bin/env python
"""Transient failures: log-based delta recovery vs full backfill.

A host reboot is not a disk loss.  Ceph distinguishes the two with the
``mon_osd_down_out_interval``: an OSD that comes back *up* before the
interval elapses is repaired from its PGs' write logs — peering diffs
per-shard versions and replays only the objects dirtied during the
outage — while an OSD marked *out* pays for a full backfill of every
object it held.  This example runs the **same** outage twice, with the
same seed and the same client writes, varying only that interval:

1. build an RS(4, 2) cluster, ingest objects, take one host down;
2. run a trickle of client writes through the outage (they succeed
   degraded, the pg_log records which shards each write missed);
3. bring the host back — in run A before the down->out interval
   (delta recovery), in run B after it (full backfill);
4. compare bytes moved, wall-clock recovery, and final state: both
   runs must end HEALTH_OK with identical per-object versions, and
   the delta run must move at least 10x fewer bytes.

A repeat of run A under the same seed must produce a byte-identical
digest (the simulation is deterministic end to end).

Run:  python examples/transient_failures.py
      python examples/transient_failures.py --objects 96 --seed 7
"""

import argparse
import hashlib
import json

from repro.cluster import (
    CACHE_SCHEMES,
    CephCluster,
    CephConfig,
    RadosClient,
    check_health,
)
from repro.cluster.client import ClientLoadGenerator
from repro.ec import ReedSolomon
from repro.sim import Environment, SeedSequence

MB = 1024 * 1024

FAIL_AT = 10.0
WRITES_START = 60.0
WRITES_FOR = 120.0
RESTORE_AT = 260.0


def run_scenario(seed: int, objects: int, down_out: float) -> dict:
    """One outage timeline; only ``down_out`` decides delta vs backfill."""
    env = Environment()
    seeds = SeedSequence(seed)
    cluster = CephCluster(
        env,
        ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        config=CephConfig(mon_osd_down_out_interval=down_out),
        num_hosts=10,
        pg_num=16,
    )
    for i in range(objects):
        cluster.ingest_object(f"obj-{i}", 4 * MB)
    client = RadosClient(cluster, seeds=seeds)
    env.run(until=FAIL_AT)

    # The victim: whichever host holds shard 0 of obj-0's PG (seed-stable).
    pg = cluster.pool.pg_of("obj-0")
    victim = cluster.topology.osds[pg.acting[0]].host_id
    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = False

    # Writes trickle through the outage and succeed degraded.
    env.run(until=WRITES_START)
    load = ClientLoadGenerator(
        client, interval=15.0, seeds=seeds,
        write_fraction=1.0, rmw_fraction=0.3,
    )
    load_proc = load.run_for(WRITES_FOR)
    env.run(until=RESTORE_AT)
    env.run_until_process(load_proc)

    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = True

    # Settle: drain recovery (and any staleness with no wake-up event).
    report = None
    for _ in range(40):
        env.run(until=env.now + 500.0)
        if cluster.recovery.kick_stale():
            continue
        report = check_health(cluster)
        if report.status == "HEALTH_OK":
            break
    assert report is not None

    stats = cluster.recovery.stats
    versions = {
        f"{pg.pgid}/{name}": version
        for pg in cluster.pool.pgs.values()
        for name, version in sorted(pg.log.object_version.items())
    }
    delta_bytes = stats.delta_bytes_read + stats.delta_bytes_written
    backfill_bytes = stats.bytes_read + stats.bytes_written
    return {
        "health": report.status,
        "writes_ok": load.write_stats.count,
        "writes_degraded": load.write_stats.degraded_count,
        "pgs_delta_recovered": stats.pgs_delta_recovered,
        "objects_delta_recovered": stats.objects_delta_recovered,
        "pgs_backfilled": stats.pgs_recovered,
        "delta_bytes": delta_bytes,
        "backfill_bytes": backfill_bytes,
        "bytes_moved": delta_bytes + backfill_bytes,
        "recovered_at": round(env.now, 3),
        "versions": versions,
        "digest": digest_of(versions, stats, report.status),
    }


def digest_of(versions, stats, health) -> str:
    payload = {
        "versions": versions,
        "health": health,
        "delta": [stats.pgs_delta_recovered, stats.objects_delta_recovered,
                  stats.delta_bytes_read, stats.delta_bytes_written],
        "backfill": [stats.pgs_recovered, stats.bytes_read,
                     stats.bytes_written],
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=128)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Transient outage, identical writes, two down->out intervals")
    print("=" * 63)

    delta = run_scenario(args.seed, args.objects, down_out=10_000.0)
    backfill = run_scenario(args.seed, args.objects, down_out=60.0)

    for label, run in (("delta (back before out)", delta),
                       ("backfill (marked out)", backfill)):
        print(f"\n{label}:")
        print(f"  health            : {run['health']}")
        print(f"  writes in outage  : {run['writes_ok']} "
              f"({run['writes_degraded']} degraded)")
        print(f"  delta-recovered   : {run['objects_delta_recovered']} objects "
              f"in {run['pgs_delta_recovered']} pgs "
              f"({run['delta_bytes'] / MB:.1f} MB moved)")
        print(f"  backfilled        : {run['pgs_backfilled']} pgs "
              f"({run['backfill_bytes'] / MB:.1f} MB moved)")
        print(f"  total bytes moved : {run['bytes_moved'] / MB:.1f} MB")

    assert delta["health"] == "HEALTH_OK", delta["health"]
    assert backfill["health"] == "HEALTH_OK", backfill["health"]
    assert delta["versions"] == backfill["versions"], (
        "same seed + same writes must commit identical object versions"
    )
    ratio = backfill["bytes_moved"] / max(1, delta["bytes_moved"])
    print(f"\nbytes-moved ratio (backfill / delta): {ratio:.1f}x")
    # Backfill cost scales with the pool, delta with the outage writes:
    # the 10x bar is the default-scale guarantee; smaller pools still
    # must show delta strictly cheaper.
    floor = 10.0 if args.objects >= 96 else 1.0
    assert ratio > floor, (
        f"delta recovery should move >{floor:.0f}x fewer bytes, "
        f"got {ratio:.1f}x"
    )

    rerun = run_scenario(args.seed, args.objects, down_out=10_000.0)
    assert rerun["digest"] == delta["digest"], "same seed must reproduce"
    print(f"re-run digest matches: {delta['digest'][:16]}… (deterministic)")


if __name__ == "__main__":
    main()
