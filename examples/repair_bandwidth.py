#!/usr/bin/env python
"""Repair bandwidth, straight from the codes (no cluster needed).

Compares what each erasure-code plugin actually reads to repair chunk
losses — the theory the paper's §4.2 failure-mode experiments test in a
real system.  Also demonstrates byte-level repair: encode an object with
Clay(12,9,11), discard a chunk, and rebuild it from beta = alpha/q
sub-chunks per helper.

Run:  python examples/repair_bandwidth.py
"""

import numpy as np

from repro.core import format_table
from repro.ec import (
    ClayCode,
    InsufficientChunksError,
    LocallyRepairableCode,
    ReedSolomon,
    ShingledErasureCode,
)


def repair_plan_table() -> None:
    codes = [
        ReedSolomon(9, 3),
        ClayCode(9, 3, d=11),
        LocallyRepairableCode(9, l=3, r=3),
        ShingledErasureCode(9, 3, l=4),
    ]
    rows = []
    for lost in ([4], [4, 7], [4, 7, 10]):
        for code in codes:
            label = f"{code.plugin_name}({code.n},{code.k})"
            alive = [i for i in range(code.n) if i not in lost]
            try:
                plan = code.repair_plan(lost, alive)
                reads = f"{plan.read_fraction_total():.2f}"
            except InsufficientChunksError:
                reads = "unrecoverable"  # SHEC guarantees one failure only
            rows.append([len(lost), label, reads])
    print(
        format_table(
            "Repair reads per stripe (in chunk units) by failure count",
            ["failures", "code", "chunks read"],
            rows,
        )
    )
    print(
        "\nNote the paper's §4.2 effect: Clay reads 11/3 ~= 3.67 chunks for"
        "\none failure (vs 9 for RS) but loses the advantage at 2+ failures.\n"
    )


def clay_byte_level_repair() -> None:
    clay = ClayCode(9, 3, d=11)
    payload = np.random.default_rng(1).integers(
        0, 256, 9 * clay.alpha * 64, dtype=np.uint8
    ).tobytes()
    chunks = clay.encode(payload)
    lost = 5
    planes = clay.repair_plane_indices(lost)
    helpers = {
        node: chunks[node].reshape(clay.alpha, -1)[planes]
        for node in range(clay.n)
        if node != lost
    }
    rebuilt = clay.repair_chunk(lost, helpers)
    assert np.array_equal(rebuilt, chunks[lost])
    read = sum(h.size for h in helpers.values())
    conventional = clay.k * len(chunks[0])
    print(
        f"Clay(12,9,11) byte-level repair of chunk {lost}: read "
        f"{read} bytes from {len(helpers)} helpers "
        f"(beta={clay.beta} of alpha={clay.alpha} sub-chunks each)\n"
        f"conventional RS repair would read {conventional} bytes "
        f"-> Clay saves {(1 - read / conventional) * 100:.1f}%"
    )


if __name__ == "__main__":
    repair_plan_table()
    clay_byte_level_repair()
