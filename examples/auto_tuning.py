#!/usr/bin/env python
"""Auto-tuning: from sweep to sensitivity ranking to a recommendation.

The paper's §6 suggests its quantitative analysis "could potentially help
create more intelligent mechanisms for tuning EC-based DSS automatically".
This example is that loop end to end:

1. sweep pg_num x cache scheme for RS(12,9) and Clay(12,9,11);
2. rank the configuration axes by their impact on recovery time;
3. recommend the fastest configuration under a write-amplification
   budget, and cross-check pg_num against the autoscaler's advice.

Run:  python examples/auto_tuning.py
      python examples/auto_tuning.py --objects 1000 --runs 2
"""

import argparse

from repro.analysis import rank_axes, recommend_configuration
from repro.cluster import autoscale_advice
from repro.core import ExperimentProfile, FaultSpec, SweepRunner, SweepSpec, format_table
from repro.workload import Workload

MB = 1024 * 1024


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=500)
    parser.add_argument("--runs", type=int, default=1)
    parser.add_argument("--wa-budget", type=float, default=1.55)
    args = parser.parse_args()

    base = ExperimentProfile(name="tuning-base")
    spec = SweepSpec(
        base=base,
        axes={
            "pg_num": [16, 256],
            "cache_scheme": ["kv-optimized", "autotune"],
        },
        ec_variants=[
            ("jerasure", {"k": 9, "m": 3}),
            ("clay", {"k": 9, "m": 3, "d": 11}),
        ],
    )
    runner = SweepRunner(
        Workload(num_objects=args.objects, object_size=64 * MB),
        faults=[FaultSpec(level="node")],
        runs=args.runs,
        progress=lambda label, i, n: print(f"  [{i + 1}/{n}] {label}"),
    )
    print(f"sweeping {spec.size()} configurations...")
    results = runner.run(spec)

    print()
    print(
        format_table(
            "sweep results",
            ["configuration", "recovery (s)", "WA"],
            [
                [r.label, f"{r.recovery_time:.1f}", f"{r.wa_actual:.3f}"]
                for r in sorted(results, key=lambda r: r.recovery_time)
            ],
        )
    )

    print()
    impacts = rank_axes(results, ["pg_num", "cache_scheme", "ec_plugin"])
    print(
        format_table(
            "what to tune first (axis impact on recovery time)",
            ["axis", "impact", "best", "worst"],
            [[i.axis, f"{i.impact_percent:.0f}%", i.best, i.worst] for i in impacts],
        )
    )

    print()
    try:
        recommendation = recommend_configuration(results, wa_budget=args.wa_budget)
        print(recommendation.summary())
    except ValueError as error:
        print(f"no configuration fits the WA budget ({error}); "
              "falling back to unconstrained choice")
        print(recommend_configuration(results).summary())

    print()
    osds = base.num_hosts * base.osds_per_host
    for pg_num in (16, 256):
        advice = autoscale_advice(pg_num, osds, 12)
        print(f"autoscaler view of pg_num={pg_num}: {advice.summary()}")


if __name__ == "__main__":
    main()
