#!/usr/bin/env python
"""Auto-tuning: budgeted configuration search instead of a full sweep.

The paper's §6 suggests its quantitative analysis "could potentially help
create more intelligent mechanisms for tuning EC-based DSS automatically".
Earlier versions of this example swept the whole pg_num x cache x code
grid exhaustively; this one runs the tuner's successive-halving strategy
over the same axes — screening every configuration at low fidelity and
promoting only the survivors to full fidelity — then reports how much of
the exhaustive budget that saved:

1. define the space: pg_num x cache scheme for RS(12,9) and Clay(12,9,11);
2. successive halving under a hard object-run budget;
3. rank the configuration axes by impact (from the tuner's own
   measurements) and recommend the best configuration under a
   write-amplification budget;
4. cross-check pg_num against the autoscaler's advice.

Run:  python examples/auto_tuning.py
      python examples/auto_tuning.py --objects 1000 --verify-exhaustive
"""

import argparse

from repro.analysis import rank_axes
from repro.cluster import autoscale_advice
from repro.core import ExperimentProfile, FaultSpec, SweepRunner, SweepSpec, format_table
from repro.tuner import (
    CategoricalAxis,
    EcVariantAxis,
    Fidelity,
    SuccessiveHalving,
    TuningSpace,
    WRITE_AMPLIFICATION,
    RECOVERY_TIME,
    pool_width_fits,
    tune,
)
from repro.workload import Workload

MB = 1024 * 1024


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=500,
                        help="full-fidelity object count")
    parser.add_argument("--runs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--wa-budget", type=float, default=1.55)
    parser.add_argument("--verify-exhaustive", action="store_true",
                        help="also run the old exhaustive grid and compare")
    args = parser.parse_args()

    base = ExperimentProfile(name="tuning-base", stripe_unit=4 * MB)
    space = TuningSpace(
        base,
        axes=[
            CategoricalAxis("pg_num", (16, 256)),
            CategoricalAxis("cache_scheme", ("kv-optimized", "autotune")),
            EcVariantAxis(variants=(
                ("jerasure", (("k", 9), ("m", 3))),
                ("clay", (("d", 11), ("k", 9), ("m", 3))),
            )),
        ],
        constraints=[pool_width_fits()],
    )
    grid = len(space.enumerate())

    screen = Fidelity(max(1, args.objects // 8), runs=args.runs, label="screen")
    full = Fidelity(args.objects, runs=args.runs, label="full")
    strategy = SuccessiveHalving([screen, full], eta=4)
    exhaustive_cost = grid * full.cost

    print(f"tuning {grid} configurations "
          f"(exhaustive grid would cost {exhaustive_cost} object-runs)...")
    outcome = tune(
        space,
        strategy,
        seed=args.seed,
        object_size=64 * MB,
        faults=[FaultSpec(level="node")],
        budget=exhaustive_cost,  # never worse than the old sweep
        objectives=[RECOVERY_TIME, WRITE_AMPLIFICATION.with_budget(args.wa_budget)],
        on_progress=lambda m, ev: print(
            f"  [{ev.simulations}] {m.label} "
            f"@{m.fidelity.label}: {m.recovery_time:.1f}s"
        ),
    )

    print()
    print(
        format_table(
            "tuner measurements (final fidelity)",
            ["configuration", "recovery (s)", "WA"],
            [
                [m.label, f"{m.recovery_time:.1f}", f"{m.wa_actual:.3f}"]
                for m in sorted(outcome.front, key=lambda m: m.recovery_time)
            ],
        )
    )

    print()
    impacts = rank_axes(
        [m.to_sweep_result() for m in outcome.evaluations],
        ["pg_num", "cache_scheme", "ec_plugin"],
    )
    print(
        format_table(
            "what to tune first (axis impact on recovery time)",
            ["axis", "impact", "best", "worst"],
            [[i.axis, f"{i.impact_percent:.0f}%", i.best, i.worst] for i in impacts],
        )
    )

    print()
    print(outcome.recommendation.summary())
    saved = 1 - outcome.spent / exhaustive_cost
    print(f"\nbudget: spent {outcome.spent} of {exhaustive_cost} object-runs "
          f"the exhaustive grid needs — saved {saved * 100:.0f}% "
          f"({outcome.simulations} simulations for {grid} configurations)")

    if args.verify_exhaustive:
        print("\nverifying against the old exhaustive sweep...")
        spec = SweepSpec(
            base=base,
            axes={
                "pg_num": [16, 256],
                "cache_scheme": ["kv-optimized", "autotune"],
            },
            ec_variants=[
                ("jerasure", {"k": 9, "m": 3}),
                ("clay", {"k": 9, "m": 3, "d": 11}),
            ],
        )
        runner = SweepRunner(
            Workload(num_objects=args.objects, object_size=64 * MB),
            faults=[FaultSpec(level="node")],
            runs=args.runs,
            base_seed=args.seed,
        )
        results = runner.run(spec)
        exhaustive_best = min(
            (r for r in results if r.wa_actual <= args.wa_budget),
            key=lambda r: r.recovery_time,
            default=min(results, key=lambda r: r.recovery_time),
        )
        chosen = outcome.recommendation.chosen
        print(f"exhaustive best: {exhaustive_best.label} "
              f"({exhaustive_best.recovery_time:.1f}s)")
        print(f"tuner's pick:    {chosen.label} ({chosen.recovery_time:.1f}s)")
        assert chosen.recovery_time <= exhaustive_best.recovery_time * 1.0001, \
            "tuner should match the exhaustive optimum on this grid"
        print("tuner matched the exhaustive recommendation at a fraction "
              "of the cost")

    print()
    osds = base.num_hosts * base.osds_per_host
    for pg_num in (16, 256):
        advice = autoscale_advice(pg_num, osds, 12)
        print(f"autoscaler view of pg_num={pg_num}: {advice.summary()}")


if __name__ == "__main__":
    main()
