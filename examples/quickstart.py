#!/usr/bin/env python
"""Quickstart: one EC fault-injection experiment, end to end.

Builds the paper's default setup — a 30-host Ceph-like cluster with an
RS(12,9) pool — runs a (scaled) object-write workload, shuts down one
storage node, and prints the recovery timeline, the checking/EC-recovery
breakdown, and the measured write amplification.

Run:  python examples/quickstart.py
"""

from repro.analysis import render_figure3_timeline
from repro.core import ExperimentProfile, FaultSpec, run_experiment
from repro.workload import Workload

MB = 1024 * 1024


def main() -> None:
    # The EC Manager side: one profile = one row through Table 1.
    profile = ExperimentProfile(
        name="quickstart-rs-12-9",
        ec_plugin="jerasure",
        ec_params={"k": 9, "m": 3},
        pg_num=256,
        cache_scheme="autotune",
        failure_domain="host",
    )
    print(f"profile: {profile.describe()}\n")

    # A scaled version of the paper's 10,000 x 64 MB workload.
    workload = Workload(num_objects=2_000, object_size=64 * MB)

    # Inject one node-level fault (a storage-host shutdown) and let the
    # coordinator drive detection -> down/out -> peering -> EC recovery.
    outcome = run_experiment(
        profile,
        workload,
        faults=[FaultSpec(level="node", count=1)],
        seed=42,
    )

    timeline = outcome.timeline
    print(render_figure3_timeline(timeline))
    print()

    stats = outcome.recovery_stats
    print(f"PGs recovered:      {stats.pgs_recovered}")
    print(f"objects recovered:  {stats.objects_recovered}")
    print(f"chunks rebuilt:     {stats.chunks_rebuilt}")
    print(f"repair read volume: {stats.bytes_read / 1e9:.2f} GB")
    print(f"rebuilt volume:     {stats.bytes_written / 1e9:.2f} GB")
    print()

    wa = outcome.wa
    print(
        f"write amplification: theoretical n/k = {wa.theoretical:.3f}, "
        f"measured at OSD level = {wa.actual:.3f} "
        f"({wa.excess_percent:+.1f}%)"
    )
    busiest = outcome.iostat.busiest_devices(top=3)
    print(f"busiest devices during recovery: {', '.join(busiest)}")


if __name__ == "__main__":
    main()
