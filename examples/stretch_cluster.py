#!/usr/bin/env python
"""Stretch cluster: one region goes dark, and WAN bytes become the bill.

A 12-host cluster dealt across three regions loses one region — every
host in it, picked deterministically from the seed — for fifteen
simulated minutes, then the region returns and the cluster rebuilds its
stale shards.  The same seeded outage runs twice:

  naive  — recovery ignores geography: each PG's first acting OSD
           decodes, pulling helper chunks across the WAN wherever it
           happens to sit.
  aware  — the plan-aware primary election weighs each candidate
           region's cross-WAN pulls and pushes and decodes where the
           helpers already are.

Both runs move the same objects through the same Clay(4,2,d=5) code and
converge to the same healthy cluster; only the *routing* of repair
bytes differs — which is exactly the number the egress ledger meters in
dollars.  Each variant also runs twice at the same seed and must digest
byte-identically: geo recovery lives inside the deterministic
simulation contract.

Run:  python examples/stretch_cluster.py
      python examples/stretch_cluster.py --objects 24 --seed 11
"""

import argparse

from repro.core import ExperimentProfile, FaultSpec
from repro.geo import run_stretch_experiment
from repro.workload import Workload

MB = 1024 * 1024


def stretch_profile() -> ExperimentProfile:
    return ExperimentProfile(
        name="stretch-cluster",
        ec_plugin="clay",
        ec_params={"k": 4, "m": 2, "d": 5},
        num_hosts=12,
        num_regions=3,
        pg_num=32,
        stripe_unit=1 * MB,
    )


def run_outage(args, locality_aware: bool):
    return run_stretch_experiment(
        stretch_profile(),
        Workload(num_objects=args.objects, object_size=8 * MB),
        [FaultSpec(level="region_outage")],
        seed=args.seed,
        restore_after=900.0,
        locality_aware=locality_aware,
    )


def report(label: str, out) -> None:
    print(f"  {label}:")
    print(
        f"    cross-region repair: {out.cross_region_repair_bytes / MB:8.1f} MB"
        f"  ({out.cross_region_pulls} pulls, {out.cross_region_pushes} pushes)"
    )
    print(f"    WAN transfers:       {out.wan_cross_region_transfers:8d}")
    print(f"    egress cost:         ${out.egress_cost:8.4f}")
    print(f"    objects recovered:   {out.objects_recovered:8d}")
    print(f"    digest:              {out.digest()}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=40)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print("=== Region outage, restored after 900s, rebuilt to health ===")
    results = {}
    for label, aware in (("naive", False), ("aware", True)):
        first = run_outage(args, aware)
        again = run_outage(args, aware)
        assert first.digest() == again.digest(), (
            f"{label}: same-seed outage runs diverged"
        )
        results[label] = first
        report(label, first)
        print("    [determinism] two same-seed runs are byte-identical")

    naive, aware = results["naive"], results["aware"]
    assert aware.objects_recovered == naive.objects_recovered > 0
    assert aware.cross_region_repair_bytes < naive.cross_region_repair_bytes
    assert aware.egress_cost < naive.egress_cost

    saved = naive.cross_region_repair_bytes - aware.cross_region_repair_bytes
    ratio = naive.cross_region_repair_bytes / aware.cross_region_repair_bytes
    print(
        f"\n  -> locality-aware primaries moved {saved / MB:.1f} MB fewer"
        f" bytes over the WAN ({ratio:.2f}x) and cut the egress bill"
        f" ${naive.egress_cost - aware.egress_cost:.4f} for the same rebuild:"
        "\n     the repair plan decodes where the helpers are, instead of"
        "\n     hauling full reads into the recovering region."
    )


if __name__ == "__main__":
    main()
