#!/usr/bin/env python
"""What the checking period costs clients: degraded reads.

The paper shows 41-58% of the recovery cycle is a checking period before
any EC recovery I/O (§4.3).  This example measures the client-visible
side of that window: while a failed host is down-but-not-out, every read
needing one of its shards is served degraded (k surviving chunks plus an
on-the-fly decode).  We drive a read load through three phases — healthy,
checking period, after recovery — and compare latency and the degraded
fraction.

Run:  python examples/degraded_reads.py
"""

from repro.cluster import (
    CACHE_SCHEMES,
    CephCluster,
    CephConfig,
    ClientLoadGenerator,
    RadosClient,
)
from repro.core import format_table
from repro.ec import ReedSolomon
from repro.sim import Environment, SeedSequence

MB = 1024 * 1024


def drive_phase(env, client, label, duration, seed):
    generator = ClientLoadGenerator(client, interval=0.2, seeds=SeedSequence(seed))
    env.run_until_process(generator.run_for(duration))
    stats = generator.stats
    return [
        label,
        stats.count,
        f"{stats.degraded_fraction * 100:.1f}%",
        f"{stats.mean_latency() * 1000:.1f} ms",
        f"{stats.latency_percentile(99) * 1000:.1f} ms",
    ]


def main() -> None:
    env = Environment()
    cluster = CephCluster(
        env,
        ReedSolomon(9, 3),
        CACHE_SCHEMES["autotune"],
        config=CephConfig(mon_osd_down_out_interval=120.0),
        num_hosts=30,
        pg_num=64,
    )
    for i in range(400):
        cluster.ingest_object(f"obj-{i}", 8 * MB)
    client = RadosClient(cluster)

    rows = []
    # Phase 1: healthy cluster.
    rows.append(drive_phase(env, client, "healthy", 30.0, seed=1))

    # Fail one storage host holding data.
    victim = cluster.topology.osds[cluster.pool.pgs[0].acting[0]].host_id
    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = False
    print(f"host.{victim} shut down at t={env.now:.0f}s "
          f"(down->out interval: 120s)\n")

    # Phase 2: the checking period (down, not yet out, nothing recovering).
    rows.append(drive_phase(env, client, "checking period", 60.0, seed=2))

    # Phase 3: wait for recovery to finish, then measure again.
    done = cluster.recovery.wait_all_recovered()
    env.run(until=env.now + 5000)
    assert done.triggered, "recovery did not finish"
    rows.append(drive_phase(env, client, "after recovery", 30.0, seed=3))

    print(
        format_table(
            "client reads across the outage (RS(12,9), 8 MB objects)",
            ["phase", "reads", "degraded", "mean latency", "p99 latency"],
            rows,
        )
    )
    print(
        "\nDuring the checking period the cluster serves degraded reads for"
        "\nevery stripe with a shard on the failed host — the client-side"
        "\ncost of the 600s window the paper says prior work ignores."
    )


if __name__ == "__main__":
    main()
